(* Tests for bwc_predtree: the prediction tree structure, distance labels
   (the central invariant: label distance = tree distance), the Gromov
   builder, anchor-tree consistency, host removal, dynamic refresh, and
   the median ensemble. *)

module Rng = Bwc_stats.Rng
module Tree = Bwc_predtree.Tree
module Label = Bwc_predtree.Label
module Anchor = Bwc_predtree.Anchor
module Builder = Bwc_predtree.Builder
module Framework = Bwc_predtree.Framework
module Ensemble = Bwc_predtree.Ensemble
module Space = Bwc_metric.Space

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

let tree_space ~seed n =
  Space.of_dmatrix (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create seed) ~n ())

let noisy_space ~seed n sigma =
  let ds =
    Bwc_dataset.Noise.multiplicative ~rng:(Rng.create (seed + 1)) ~sigma
      (Bwc_dataset.Hier_tree.generate ~rng:(Rng.create seed) ~n ~name:"noisy" ())
  in
  Bwc_dataset.Dataset.metric ds

(* ----- Tree ----- *)

let test_tree_two_hosts () =
  let t = Tree.create () in
  let v0 = Tree.add_first_host t ~host:0 in
  let _v1, inner, anchor, offset =
    Tree.add_host t ~host:1 ~between:(v0, v0) ~at:0.0 ~leaf_weight:7.0
  in
  Alcotest.(check int) "anchor is root" 0 anchor;
  Alcotest.(check (float 1e-9)) "offset" 0.0 offset;
  Alcotest.(check int) "inner is root vertex" v0 inner;
  Alcotest.(check (float 1e-9)) "distance" 7.0 (Tree.host_dist t 0 1);
  Alcotest.(check bool) "structure" true (Tree.is_tree t)

(* Build the paper's Fig. 1 fragment by hand:
   a = root, b attached with edge weight 25 (t_b = a),
   d attached on the (a,b) edge at distance 10 from b with leaf 20. *)
let fig1_fragment () =
  let t = Tree.create () in
  let va = Tree.add_first_host t ~host:0 (* a *) in
  let vb, _, _, _ = Tree.add_host t ~host:1 ~between:(va, va) ~at:0.0 ~leaf_weight:25.0 in
  (* place t_d at distance 15 from a along a~b (= 10 from b) *)
  let _vd, _td, anchor_d, offset_d =
    Tree.add_host t ~host:2 ~between:(va, vb) ~at:15.0 ~leaf_weight:20.0
  in
  (t, anchor_d, offset_d)

let test_tree_fig1_distances () =
  let t, anchor_d, offset_d = fig1_fragment () in
  Alcotest.(check int) "d anchors on b" 1 anchor_d;
  Alcotest.(check (float 1e-9)) "t_d is 10 from b" 10.0 offset_d;
  Alcotest.(check (float 1e-9)) "d(a,b)" 25.0 (Tree.host_dist t 0 1);
  Alcotest.(check (float 1e-9)) "d(a,d) = 15 + 20" 35.0 (Tree.host_dist t 0 2);
  Alcotest.(check (float 1e-9)) "d(b,d) = 10 + 20" 30.0 (Tree.host_dist t 1 2)

let test_tree_clamping () =
  let t = Tree.create () in
  let va = Tree.add_first_host t ~host:0 in
  let vb, _, _, _ = Tree.add_host t ~host:1 ~between:(va, va) ~at:0.0 ~leaf_weight:10.0 in
  (* at beyond the path length clamps to the far end; negative leaf clamps to 0 *)
  let _vc, _, _, offset =
    Tree.add_host t ~host:2 ~between:(va, vb) ~at:99.0 ~leaf_weight:(-5.0)
  in
  Alcotest.(check (float 1e-9)) "clamped to b" 0.0 offset;
  Alcotest.(check (float 1e-9)) "zero leaf" 0.0 (Tree.host_dist t 1 2)

let test_tree_remove_leaf () =
  let t, _, _ = fig1_fragment () in
  let d01 = Tree.host_dist t 0 1 in
  (match Tree.remove_host t ~host:2 with
  | Ok () -> ()
  | Error `Has_dependents -> Alcotest.fail "d has no dependents");
  Alcotest.(check bool) "still a tree" true (Tree.is_tree t);
  Alcotest.(check (float 1e-9)) "d(a,b) unchanged" d01 (Tree.host_dist t 0 1)

let test_tree_remove_refuses_dependents () =
  let t, _, _ = fig1_fragment () in
  (* b owns the edge d anchors on: removing b must be refused *)
  match Tree.remove_host t ~host:1 with
  | Ok () -> Alcotest.fail "b has dependents"
  | Error `Has_dependents -> ()

let test_tree_degenerate_split () =
  (* split at exactly 0 keeps distances exact (zero-weight edges) *)
  let t = Tree.create () in
  let va = Tree.add_first_host t ~host:0 in
  let vb, _, _, _ = Tree.add_host t ~host:1 ~between:(va, va) ~at:0.0 ~leaf_weight:10.0 in
  let _vc, _, _, _ = Tree.add_host t ~host:2 ~between:(va, vb) ~at:0.0 ~leaf_weight:3.0 in
  Alcotest.(check (float 1e-9)) "d(a,c)" 3.0 (Tree.host_dist t 0 2);
  Alcotest.(check (float 1e-9)) "d(b,c)" 13.0 (Tree.host_dist t 1 2);
  Alcotest.(check bool) "tree" true (Tree.is_tree t)

(* ----- Anchor ----- *)

let test_anchor_structure () =
  let a = Anchor.create () in
  Anchor.set_root a 0;
  Anchor.add a ~parent:0 1;
  Anchor.add a ~parent:1 2;
  Anchor.add a ~parent:1 3;
  Alcotest.(check int) "root" 0 (Anchor.root a);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 3; 2 ] (Anchor.neighbors a 1);
  Alcotest.(check int) "depth of 3" 2 (Anchor.depth a 3);
  Alcotest.(check int) "size" 4 (Anchor.size a);
  Alcotest.(check int) "max depth" 2 (Anchor.max_depth a)

let test_anchor_remove_leaf () =
  let a = Anchor.create () in
  Anchor.set_root a 0;
  Anchor.add a ~parent:0 1;
  Anchor.add a ~parent:1 2;
  (match Anchor.remove_leaf a 1 with
  | Ok () -> Alcotest.fail "1 has a child"
  | Error `Not_leaf -> ());
  (match Anchor.remove_leaf a 2 with
  | Ok () -> ()
  | Error `Not_leaf -> Alcotest.fail "2 is a leaf");
  Alcotest.(check (list int)) "children pruned" [] (Anchor.children a 1)

(* The self-healing invariants — connectivity, no host loss, recomputed
   depths — boiled down to one walk from the root. *)
let check_anchor_tree a expected_hosts =
  Alcotest.(check (list int))
    "host set" expected_hosts
    (List.sort compare (Anchor.hosts a));
  let seen = Hashtbl.create 16 in
  let rec walk h d =
    if Hashtbl.mem seen h then Alcotest.failf "cycle through %d" h;
    Hashtbl.replace seen h ();
    Alcotest.(check int) (Printf.sprintf "depth of %d" h) d (Anchor.depth a h);
    List.iter
      (fun c ->
        match Anchor.parent a c with
        | Some p when p = h -> walk c (d + 1)
        | _ -> Alcotest.failf "parent link of %d broken" c)
      (Anchor.children a h)
  in
  walk (Anchor.root a) 0;
  Alcotest.(check int) "all hosts reachable from root"
    (List.length expected_hosts)
    (Hashtbl.length seen)

(* 0 - (1, 4); 1 - (2, 3); 4 - (5) *)
let repair_fixture () =
  let a = Anchor.create () in
  Anchor.set_root a 0;
  Anchor.add a ~parent:0 1;
  Anchor.add a ~parent:1 2;
  Anchor.add a ~parent:1 3;
  Anchor.add a ~parent:0 4;
  Anchor.add a ~parent:4 5;
  a

let test_anchor_remove_leaf_errors () =
  let a = Anchor.create () in
  Anchor.set_root a 0;
  (match Anchor.remove_leaf a 0 with
  | Ok () -> Alcotest.fail "a childless root must not be removable"
  | Error `Not_leaf -> ());
  Anchor.add a ~parent:0 1;
  (match Anchor.remove_leaf a 0 with
  | Ok () -> Alcotest.fail "the root must not be removable"
  | Error `Not_leaf -> ());
  Alcotest.check_raises "unknown host"
    (Invalid_argument "Anchor.remove_leaf: unknown host") (fun () ->
      ignore (Anchor.remove_leaf a 9))

let test_anchor_regraft () =
  let a = repair_fixture () in
  (match Anchor.regraft a ~host:0 ~parent:4 with
  | Error `Is_root -> ()
  | _ -> Alcotest.fail "root regraft must be refused");
  (match Anchor.regraft a ~host:1 ~parent:3 with
  | Error `Would_cycle -> ()
  | _ -> Alcotest.fail "regraft under own descendant must be refused");
  (match Anchor.regraft a ~host:1 ~parent:1 with
  | Error `Would_cycle -> ()
  | _ -> Alcotest.fail "regraft under itself must be refused");
  Alcotest.check_raises "unknown host"
    (Invalid_argument "Anchor.regraft: unknown host") (fun () ->
      ignore (Anchor.regraft a ~host:9 ~parent:0));
  (* move the whole 1-subtree under the deepest leaf of the other branch *)
  (match Anchor.regraft a ~host:1 ~parent:5 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "valid regraft refused");
  Alcotest.(check (option int)) "new parent" (Some 5) (Anchor.parent a 1);
  Alcotest.(check (list int)) "old parent forgot it" [ 4 ] (Anchor.children a 0);
  Alcotest.(check int) "subtree depth recomputed" 4 (Anchor.depth a 2);
  check_anchor_tree a [ 0; 1; 2; 3; 4; 5 ]

let test_anchor_remove_subtree () =
  let a = repair_fixture () in
  (match Anchor.remove_subtree a 0 with
  | Error `Is_root -> ()
  | Ok _ -> Alcotest.fail "root subtree removal must be refused");
  Alcotest.check_raises "unknown host"
    (Invalid_argument "Anchor.remove_subtree: unknown host") (fun () ->
      ignore (Anchor.remove_subtree a 9));
  (match Anchor.remove_subtree a 1 with
  | Ok doomed -> Alcotest.(check (list int)) "removed, ascending" [ 1; 2; 3 ] doomed
  | Error `Is_root -> Alcotest.fail "1 is not the root");
  Alcotest.(check bool) "gone" false (Anchor.mem a 2);
  check_anchor_tree a [ 0; 4; 5 ]

let test_anchor_remove_node () =
  (* interior node: orphans regraft to the grandparent *)
  let a = repair_fixture () in
  (match Anchor.remove_node a 1 with
  | Ok moves ->
      Alcotest.(check (list (pair int int)))
        "orphans to grandparent, ascending"
        [ (2, 0); (3, 0) ]
        moves
  | Error `Last_host -> Alcotest.fail "not the last host");
  check_anchor_tree a [ 0; 2; 3; 4; 5 ];
  (* leaf: no regrafts *)
  (match Anchor.remove_node a 5 with
  | Ok moves -> Alcotest.(check (list (pair int int))) "no orphans" [] moves
  | Error `Last_host -> Alcotest.fail "not the last host");
  check_anchor_tree a [ 0; 2; 3; 4 ];
  (* dead root: the smallest child is promoted, the rest regraft under it *)
  (match Anchor.remove_node a 0 with
  | Ok moves ->
      Alcotest.(check (list (pair int int)))
        "siblings under the promoted root"
        [ (3, 2); (4, 2) ]
        moves
  | Error `Last_host -> Alcotest.fail "not the last host");
  Alcotest.(check int) "smallest child promoted" 2 (Anchor.root a);
  check_anchor_tree a [ 2; 3; 4 ];
  (* the last host cannot be removed *)
  let b = Anchor.create () in
  Anchor.set_root b 7;
  (match Anchor.remove_node b 7 with
  | Error `Last_host -> ()
  | Ok _ -> Alcotest.fail "the last host must stay")

(* ----- Label ----- *)

let test_label_root () =
  Alcotest.(check (float 1e-9)) "root to root" 0.0 (Label.dist Label.root Label.root);
  Alcotest.(check int) "depth" 0 (Label.depth Label.root)

let test_label_fig1 () =
  (* labels of the Fig. 1 fragment, written out by hand *)
  let label_b = Label.extend Label.root ~host:1 ~offset:0.0 ~leaf:25.0 in
  let label_d = Label.extend label_b ~host:2 ~offset:10.0 ~leaf:20.0 in
  Alcotest.(check (float 1e-9)) "d(a,b)" 25.0 (Label.dist Label.root label_b);
  Alcotest.(check (float 1e-9)) "d(a,d)" 35.0 (Label.dist Label.root label_d);
  Alcotest.(check (float 1e-9)) "d(b,d)" 30.0 (Label.dist label_b label_d);
  Alcotest.(check bool) "valid" true (Label.valid label_d);
  Alcotest.(check (list int)) "chain" [ 1; 2 ] (Label.chain label_d)

let test_label_siblings () =
  (* two hosts anchored on the same edge at different offsets *)
  let label_b = Label.extend Label.root ~host:1 ~offset:0.0 ~leaf:25.0 in
  let label_d = Label.extend label_b ~host:2 ~offset:10.0 ~leaf:20.0 in
  let label_e = Label.extend label_b ~host:3 ~offset:18.0 ~leaf:4.0 in
  (* path d..e: 20 up to t_d, |18-10| along b's edge, 4 down to e *)
  Alcotest.(check (float 1e-9)) "sibling distance" 32.0 (Label.dist label_d label_e)

let test_label_equals_tree_distance () =
  (* the central invariant, on full framework builds over tree metrics *)
  List.iter
    (fun (seed, n, mode) ->
      let space = tree_space ~seed n in
      let fw = Framework.build ~rng:(Rng.create (seed * 7)) ~mode space in
      let tree = Framework.tree fw in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let via_label = Framework.predicted fw i j in
          let via_tree = Tree.host_dist tree i j in
          if not (feq via_label via_tree) then
            Alcotest.failf "label/tree mismatch (%d,%d): %g vs %g" i j via_label via_tree
        done
      done)
    [
      (3, 24, Framework.default_mode);
      (4, 31, Framework.centralized_mode);
      (5, 18, { Framework.base = `Random; end_search = `Exact });
    ]

let test_label_equals_tree_distance_noisy () =
  (* the invariant holds on arbitrary (non-tree) inputs too: labels always
     describe the tree that was actually built *)
  let space = noisy_space ~seed:6 25 0.5 in
  let fw = Framework.build ~rng:(Rng.create 44) space in
  let tree = Framework.tree fw in
  for i = 0 to 24 do
    for j = i + 1 to 24 do
      if not (feq (Framework.predicted fw i j) (Tree.host_dist tree i j)) then
        Alcotest.failf "mismatch at (%d,%d)" i j
    done
  done

(* ----- Builder / Framework ----- *)

let test_gromov_product () =
  let d a b = float_of_int (abs (a - b)) in
  (* (x|y)_z with points on a line: shared prefix length from z *)
  Alcotest.(check (float 1e-9)) "line" 2.0 (Builder.gromov ~d ~x:5 ~y:2 ~z:0)

let test_exact_mode_embeds_tree_metric () =
  let n = 40 in
  let space = tree_space ~seed:8 n in
  let fw = Framework.build ~rng:(Rng.create 9) ~mode:Framework.centralized_mode space in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let real = space.Space.dist i j and pred = Framework.predicted fw i j in
      if not (feq ~eps:1e-6 real pred) then
        Alcotest.failf "embedding not exact at (%d,%d): %g vs %g" i j real pred
    done
  done

let test_random_base_exact_search_also_exact () =
  let n = 30 in
  let space = tree_space ~seed:10 n in
  let fw =
    Framework.build ~rng:(Rng.create 11)
      ~mode:{ Framework.base = `Random; end_search = `Exact }
      space
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (feq ~eps:1e-6 (space.Space.dist i j) (Framework.predicted fw i j)) then
        Alcotest.failf "not exact at (%d,%d)" i j
    done
  done

let test_anchor_tree_consistency () =
  let n = 35 in
  let space = tree_space ~seed:12 n in
  let fw = Framework.build ~rng:(Rng.create 13) space in
  let anchor = Framework.anchor fw in
  Alcotest.(check int) "all hosts present" n (Anchor.size anchor);
  let order = Framework.insertion_order fw in
  Alcotest.(check int) "root is first inserted" order.(0) (Anchor.root anchor);
  (* every non-root host's label chain = path of anchors from below root *)
  Array.iter
    (fun h ->
      let chain = Label.chain (Framework.label fw h) in
      let rec walk parent = function
        | [] -> ()
        | x :: rest ->
            (match Anchor.parent anchor x with
            | Some p when p = parent -> ()
            | Some p -> Alcotest.failf "host %d: anchor parent %d, label says %d" x p parent
            | None -> Alcotest.failf "host %d has no anchor parent" x);
            walk x rest
      in
      if h <> Anchor.root anchor then walk (Anchor.root anchor) chain)
    order

let test_labels_valid () =
  let space = noisy_space ~seed:14 30 0.3 in
  let fw = Framework.build ~rng:(Rng.create 15) space in
  for h = 0 to 29 do
    if not (Label.valid (Framework.label fw h)) then Alcotest.failf "invalid label %d" h
  done

let test_measurement_savings () =
  let n = 60 in
  let space = tree_space ~seed:16 n in
  let fw = Framework.build ~rng:(Rng.create 17) space in
  let full = n * (n - 1) / 2 in
  Alcotest.(check bool)
    "fewer than full mesh" true
    (Framework.measurements_total fw < full)

let test_refresh_host () =
  let n = 20 in
  let space = tree_space ~seed:18 n in
  let fw = Framework.build ~rng:(Rng.create 19) space in
  (* refreshing every host keeps the invariant and the host count *)
  for h = 0 to n - 1 do
    Framework.refresh_host ~rng:(Rng.create (100 + h)) fw h
  done;
  Alcotest.(check int) "size" n (Framework.size fw);
  let tree = Framework.tree fw in
  Alcotest.(check bool) "tree" true (Tree.is_tree tree);
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (feq (Framework.predicted fw i j) (Tree.host_dist tree i j)) then
        Alcotest.failf "label/tree mismatch after refresh (%d,%d)" i j
    done
  done

(* ----- Ensemble ----- *)

let test_ensemble_median_between_extremes () =
  let space = noisy_space ~seed:20 20 0.3 in
  let ens = Ensemble.build ~rng:(Rng.create 21) ~size:3 space in
  let fws = Ensemble.frameworks ens in
  for i = 0 to 19 do
    for j = i + 1 to 19 do
      let preds = Array.map (fun fw -> Framework.predicted fw i j) fws in
      Array.sort compare preds;
      let m = Ensemble.predicted ens i j in
      if m < preds.(0) -. 1e-9 || m > preds.(2) +. 1e-9 then
        Alcotest.failf "median out of range at (%d,%d)" i j
    done
  done

let test_ensemble_label_dist_matches_predicted () =
  let space = noisy_space ~seed:22 18 0.2 in
  let ens = Ensemble.build ~rng:(Rng.create 23) ~size:3 space in
  for i = 0 to 17 do
    for j = i + 1 to 17 do
      let via_labels = Ensemble.label_dist (Ensemble.labels ens i) (Ensemble.labels ens j) in
      if not (feq via_labels (Ensemble.predicted ens i j)) then
        Alcotest.failf "mismatch at (%d,%d)" i j
    done
  done

let test_ensemble_improves_tail () =
  let space = noisy_space ~seed:24 60 0.3 in
  let tail ens =
    let errs = Ensemble.relative_errors ens in
    Bwc_stats.Cdf.quantile (Bwc_stats.Cdf.make errs) 0.95
  in
  let single = Ensemble.build ~rng:(Rng.create 25) ~size:1 space in
  let five = Ensemble.build ~rng:(Rng.create 25) ~size:5 space in
  Alcotest.(check bool) "p95 improves" true (tail five < tail single)

let test_ensemble_arity_mismatch () =
  let space = tree_space ~seed:26 10 in
  let e1 = Ensemble.build ~rng:(Rng.create 27) ~size:1 space in
  let e3 = Ensemble.build ~rng:(Rng.create 27) ~size:3 space in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Ensemble.label_dist (Ensemble.labels e1 0) (Ensemble.labels e3 1));
       false
     with Invalid_argument _ -> true)

let test_label_deep_chain () =
  (* a three-level chain exercised against hand-computed distances:
     root r, b (leaf 30, t_b = r), c anchored on b's edge at offset 12
     with leaf 8, d anchored on c's edge at offset 3 with leaf 5. *)
  let lb = Label.extend Label.root ~host:1 ~offset:0.0 ~leaf:30.0 in
  let lc = Label.extend lb ~host:2 ~offset:12.0 ~leaf:8.0 in
  let ld = Label.extend lc ~host:3 ~offset:3.0 ~leaf:5.0 in
  (* d(r,c): down r->t_c = 30 - 12 = 18, plus leaf 8 -> 26 *)
  Alcotest.(check (float 1e-9)) "d(r,c)" 26.0 (Label.dist Label.root lc);
  (* d(b,c): t_c at 12 from b, leaf 8 -> 20 *)
  Alcotest.(check (float 1e-9)) "d(b,c)" 20.0 (Label.dist lb lc);
  (* d(c,d): t_d at 3 from c, leaf 5 -> 8 *)
  Alcotest.(check (float 1e-9)) "d(c,d)" 8.0 (Label.dist lc ld);
  (* d(b,d): b -> t_c (12) .. along c's leaf edge from t_c (8 from c) to
     t_d (3 from c): 5 .. down to d: 5  => 12 + 5 + 5 = 22 *)
  Alcotest.(check (float 1e-9)) "d(b,d)" 22.0 (Label.dist lb ld);
  (* d(r,d): r -> t_c: 18, t_c -> t_d: 5, t_d -> d: 5 => 28 *)
  Alcotest.(check (float 1e-9)) "d(r,d)" 28.0 (Label.dist Label.root ld)

let test_ensemble_even_size_median () =
  (* even ensemble sizes average the two central values *)
  let space = tree_space ~seed:28 12 in
  let ens = Ensemble.build ~rng:(Rng.create 29) ~size:2 space in
  let fws = Ensemble.frameworks ens in
  let a = Framework.predicted fws.(0) 0 5 and b = Framework.predicted fws.(1) 0 5 in
  Alcotest.(check (float 1e-9)) "mean of two" ((a +. b) /. 2.0) (Ensemble.predicted ens 0 5)

let test_builder_measurements_positive () =
  let space = tree_space ~seed:30 25 in
  let fw = Framework.build ~rng:(Rng.create 31) space in
  Alcotest.(check bool) "positive" true (Framework.measurements_total fw > 0)

let test_dot_export () =
  let space = tree_space ~seed:32 10 in
  let fw = Framework.build ~rng:(Rng.create 33) space in
  let dot = Tree.to_dot (Framework.tree fw) in
  Alcotest.(check bool) "prediction dot" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  let adot = Anchor.to_dot (Framework.anchor fw) in
  Alcotest.(check bool) "anchor dot" true
    (String.length adot > 0 && String.sub adot 0 7 = "digraph")

(* ----- qcheck ----- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"label distance = tree distance (random builds)" ~count:25
      (pair (int_range 4 30) (int_range 0 10_000))
      (fun (n, seed) ->
        let space = tree_space ~seed n in
        let fw = Framework.build ~rng:(Rng.create (seed + 1)) space in
        let tree = Framework.tree fw in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if not (feq (Framework.predicted fw i j) (Tree.host_dist tree i j)) then
              ok := false
          done
        done;
        !ok && Tree.is_tree tree);
    Test.make ~name:"exact mode is a lossless embedding of tree metrics" ~count:15
      (pair (int_range 4 25) (int_range 0 10_000))
      (fun (n, seed) ->
        let space = tree_space ~seed n in
        let fw =
          Framework.build ~rng:(Rng.create (seed + 2)) ~mode:Framework.centralized_mode
            space
        in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if not (feq ~eps:1e-6 (space.Space.dist i j) (Framework.predicted fw i j))
            then ok := false
          done
        done;
        !ok);
    Test.make ~name:"labels remain geometrically valid on noisy inputs" ~count:20
      (pair (int_range 4 25) (int_range 0 10_000))
      (fun (n, seed) ->
        let space = noisy_space ~seed n 0.4 in
        let fw = Framework.build ~rng:(Rng.create (seed + 3)) space in
        let ok = ref true in
        for h = 0 to n - 1 do
          if not (Label.valid (Framework.label fw h)) then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "bwc_predtree"
    [
      ( "tree",
        [
          Alcotest.test_case "two hosts" `Quick test_tree_two_hosts;
          Alcotest.test_case "fig.1 fragment" `Quick test_tree_fig1_distances;
          Alcotest.test_case "clamping" `Quick test_tree_clamping;
          Alcotest.test_case "remove leaf" `Quick test_tree_remove_leaf;
          Alcotest.test_case "remove refuses dependents" `Quick
            test_tree_remove_refuses_dependents;
          Alcotest.test_case "degenerate split" `Quick test_tree_degenerate_split;
        ] );
      ( "anchor",
        [
          Alcotest.test_case "structure" `Quick test_anchor_structure;
          Alcotest.test_case "remove leaf" `Quick test_anchor_remove_leaf;
          Alcotest.test_case "remove leaf error paths" `Quick
            test_anchor_remove_leaf_errors;
          Alcotest.test_case "regraft" `Quick test_anchor_regraft;
          Alcotest.test_case "remove subtree" `Quick test_anchor_remove_subtree;
          Alcotest.test_case "remove node" `Quick test_anchor_remove_node;
        ] );
      ( "label",
        [
          Alcotest.test_case "root" `Quick test_label_root;
          Alcotest.test_case "fig.1 labels" `Quick test_label_fig1;
          Alcotest.test_case "siblings on one edge" `Quick test_label_siblings;
          Alcotest.test_case "deep chain geometry" `Quick test_label_deep_chain;
          Alcotest.test_case "label = tree distance" `Quick
            test_label_equals_tree_distance;
          Alcotest.test_case "label = tree distance (noisy)" `Quick
            test_label_equals_tree_distance_noisy;
        ] );
      ( "framework",
        [
          Alcotest.test_case "gromov product" `Quick test_gromov_product;
          Alcotest.test_case "exact mode lossless" `Quick
            test_exact_mode_embeds_tree_metric;
          Alcotest.test_case "random base + exact search lossless" `Quick
            test_random_base_exact_search_also_exact;
          Alcotest.test_case "anchor tree consistency" `Quick
            test_anchor_tree_consistency;
          Alcotest.test_case "labels valid" `Quick test_labels_valid;
          Alcotest.test_case "measurement savings" `Quick test_measurement_savings;
          Alcotest.test_case "measurements positive" `Quick
            test_builder_measurements_positive;
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "refresh host" `Quick test_refresh_host;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "median bounded by members" `Quick
            test_ensemble_median_between_extremes;
          Alcotest.test_case "even-size median" `Quick test_ensemble_even_size_median;
          Alcotest.test_case "label dist = predicted" `Quick
            test_ensemble_label_dist_matches_predicted;
          Alcotest.test_case "ensemble improves tail" `Quick test_ensemble_improves_tail;
          Alcotest.test_case "arity mismatch rejected" `Quick test_ensemble_arity_mismatch;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
