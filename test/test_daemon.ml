(* Deterministic tests for the bwclusterd reactor core: wire protocol,
   typed admission shedding, deadline timeouts, graceful degradation
   with explicit staleness, retry backoff, drain-then-quiesce shutdown,
   script replay determinism, and warm boot across rotated snapshot
   generations (including corruption fallback). *)

module Rng = Bwc_stats.Rng
module Fault = Bwc_sim.Fault
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module Dynamic = Bwc_core.Dynamic
module Codec = Bwc_persist.Codec
module Snapshot = Bwc_persist.Snapshot
module Admission = Bwc_daemon.Admission
module Wire = Bwc_daemon.Wire
module Reactor = Bwc_daemon.Reactor
module Script = Bwc_daemon.Script
module Lifecycle = Bwc_daemon.Lifecycle

let dataset ~seed n =
  Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed) ~name:"daemon-ds"
    { Bwc_dataset.Planetlab.hp_target with n }

let range n = List.init n (fun i -> i)

(* a small system with one spare host (n-1) kept out for JOIN tests *)
let dyn ?(seed = 11) ?(n = 16) () =
  Dynamic.create ~seed ~initial_members:(range (n - 1)) (dataset ~seed:(seed + 1) n)

let reactor ?metrics ?trace ?(config = Reactor.default_config) ?seed ?n () =
  Reactor.create ?metrics ?trace config (dyn ?seed ?n ())

let render_all outs =
  List.map (fun (o : Reactor.output) -> Wire.render o.Reactor.response) outs

let check_strings = Alcotest.(check (list string))

(* ----- wire ----- *)

let test_wire_parse () =
  (match Wire.parse "QUERY q1 k=3 b=12.5 deadline=9" with
  | Ok (Wire.Query { id = "q1"; k = 3; b; deadline = Some 9 }) ->
      Alcotest.(check (float 1e-9)) "b" 12.5 b
  | _ -> Alcotest.fail "QUERY did not parse");
  (match Wire.parse "MEAS m7 src=1 dst=2 bw=33.0" with
  | Ok (Wire.Measure { id = "m7"; src = 1; dst = 2; _ }) -> ()
  | _ -> Alcotest.fail "MEAS did not parse");
  (match Wire.parse "JOIN j1 host=5" with
  | Ok (Wire.Join { id = "j1"; host = 5 }) -> ()
  | _ -> Alcotest.fail "JOIN did not parse");
  List.iter
    (fun bad ->
      match Wire.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed line %S" bad)
    [ ""; "NOPE"; "QUERY"; "QUERY q1 k=x b=1"; "JOIN j1"; "MEAS m1 src=1" ]

let test_wire_render () =
  check_strings "responses"
    [
      "PONG";
      "OK q1 cluster=1,2,3 hops=2 served=live degraded=0 staleness=0";
      "OK q2 cluster=none hops=0 served=index degraded=1 staleness=7 lo=2 hi=5";
      "SHED m1 class=meas reason=pressure";
      "TIMEOUT q3 waited=9 deadline=8";
      "ACK j1 class=churn applied=1";
      "REJECTED x reason=bad_host attempts=0";
    ]
    (List.map Wire.render
       [
         Wire.Pong;
         Wire.Answer
           {
             id = "q1";
             cluster = Some [ 1; 2; 3 ];
             hops = 2;
             served = Wire.Live;
             degraded = false;
             staleness = 0;
             bounds = None;
           };
         Wire.Answer
           {
             id = "q2";
             cluster = None;
             hops = 0;
             served = Wire.Index;
             degraded = true;
             staleness = 7;
             bounds = Some (2, 5);
           };
         Wire.Shed { id = "m1"; cls = "meas"; reason = "pressure" };
         Wire.Timeout { id = "q3"; waited = 9; deadline = 8 };
         Wire.Acked { id = "j1"; cls = "churn"; applied = true };
         Wire.Rejected { id = "x"; reason = "bad_host"; attempts = 0 };
       ])

(* ----- immediate requests ----- *)

let test_immediate () =
  let r = reactor () in
  check_strings "ping" [ "PONG" ] (render_all (Reactor.handle_line r ~now:0 ~conn:1 "PING"));
  (match Reactor.handle_line r ~now:0 ~conn:1 "HEALTH" with
  | [ { Reactor.response = Wire.Health_report { mode = "normal"; members = 15; _ }; _ } ]
    -> ()
  | _ -> Alcotest.fail "HEALTH shape");
  match Reactor.handle_line r ~now:0 ~conn:1 "garbage here" with
  | [ { Reactor.response = Wire.Parse_error _; _ } ] -> ()
  | _ -> Alcotest.fail "ERR expected"

(* ----- admission shedding ----- *)

let shallow_config =
  {
    Reactor.default_config with
    Reactor.admission =
      {
        Admission.churn = { Admission.cap = 4; rate = 10; burst = 10 };
        query = { Admission.cap = 2; rate = 10; burst = 10 };
        meas = { Admission.cap = 8; rate = 1; burst = 2 };
      };
  }

let test_shed_queue_full () =
  let r = reactor ~config:shallow_config () in
  let offer i =
    render_all
      (Reactor.handle_line r ~now:0 ~conn:0 (Printf.sprintf "QUERY q%d k=2 b=1.0" i))
  in
  check_strings "admitted" [] (offer 1);
  check_strings "admitted" [] (offer 2);
  check_strings "shed" [ "SHED q3 class=query reason=queue_full" ] (offer 3)

let test_shed_rate_limit () =
  let r = reactor ~config:shallow_config () in
  let offer i =
    render_all
      (Reactor.handle_line r ~now:0 ~conn:0
         (Printf.sprintf "MEAS m%d src=0 dst=1 bw=10.0" i))
  in
  check_strings "burst 1" [] (offer 1);
  check_strings "burst 2" [] (offer 2);
  check_strings "bucket empty" [ "SHED m3 class=meas reason=rate_limit" ] (offer 3)

let test_shed_pressure () =
  let r = reactor ~config:shallow_config () in
  (* churn lane capacity 4: three queued events put it over half *)
  List.iter
    (fun i ->
      check_strings "churn admitted" []
        (render_all
           (Reactor.handle_line r ~now:0 ~conn:0 (Printf.sprintf "LEAVE c%d host=%d" i i))))
    [ 1; 2; 3 ];
  check_strings "gossip shed under churn pressure"
    [ "SHED m1 class=meas reason=pressure" ]
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "MEAS m1 src=0 dst=1 bw=5.0"))

(* ----- deadlines ----- *)

let test_deadline_timeout () =
  let config =
    { shallow_config with Reactor.work_budget = 1; churn_share = 0; default_deadline = 1 }
  in
  let r = reactor ~config () in
  check_strings "q1 in" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "QUERY q1 k=2 b=1.0"));
  check_strings "q2 in" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "QUERY q2 k=2 b=1.0 deadline=1"));
  (* tick 1: budget 1 answers q1; tick 2: q2 has waited 2 > deadline 1 *)
  (match render_all (Reactor.tick r ~now:1) with
  | [ first ] when String.length first >= 5 && String.sub first 0 5 = "OK q1" -> ()
  | out -> Alcotest.failf "expected q1 answer, got [%s]" (String.concat "; " out));
  check_strings "typed timeout" [ "TIMEOUT q2 waited=2 deadline=1" ]
    (render_all (Reactor.tick r ~now:2))

(* ----- graceful degradation ----- *)

let test_degraded_staleness () =
  let config = { Reactor.default_config with Reactor.stabilize_budget = 1 } in
  let metrics = Registry.create () in
  let r = reactor ~metrics ~config ~n:24 () in
  (* a churn event makes the aggregation stale; with 1 round/tick it
     stays stale for several ticks, during which queries must answer
     from the index with an explicit staleness bound *)
  check_strings "leave admitted" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "LEAVE c1 host=3"));
  let out1 = render_all (Reactor.tick r ~now:1) in
  check_strings "leave acked" [ "ACK c1 class=churn applied=1" ] out1;
  check_strings "query admitted" []
    (render_all (Reactor.handle_line r ~now:1 ~conn:0 "QUERY q1 k=2 b=1.0"));
  (match Reactor.tick r ~now:2 with
  | [ { Reactor.response = Wire.Answer { id = "q1"; served = Wire.Index; degraded = true; staleness; _ }; _ } ]
    ->
      if staleness <= 0 then Alcotest.failf "staleness %d not positive" staleness
  | out ->
      Alcotest.failf "expected degraded answer, got [%s]"
        (String.concat "; " (render_all out)));
  (* let it reconverge, then expect live service again *)
  let now = ref 2 in
  while Reactor.staleness r ~now:!now > 0 && !now < 200 do
    incr now;
    let (_ : Reactor.output list) = Reactor.tick r ~now:!now in
    ()
  done;
  Alcotest.(check bool) "reconverged" true (Reactor.staleness r ~now:!now = 0);
  check_strings "query admitted" []
    (render_all (Reactor.handle_line r ~now:!now ~conn:0 "QUERY q2 k=2 b=1.0"));
  (match Reactor.tick r ~now:(!now + 1) with
  | [ { Reactor.response = Wire.Answer { id = "q2"; degraded = false; staleness = 0; _ }; _ } ]
    -> ()
  | out ->
      Alcotest.failf "expected live answer, got [%s]"
        (String.concat "; " (render_all out)))

let test_degraded_coreset_bounds () =
  let config = { Reactor.default_config with Reactor.stabilize_budget = 1 } in
  let n = 24 in
  let dyn =
    Dynamic.create ~seed:11 ~initial_members:(range (n - 1))
      ~index_mode:(Dynamic.Coreset 8) (dataset ~seed:12 n)
  in
  let r = Reactor.create config dyn in
  check_strings "leave admitted" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "LEAVE c1 host=3"));
  check_strings "leave acked" [ "ACK c1 class=churn applied=1" ]
    (render_all (Reactor.tick r ~now:1));
  check_strings "query admitted" []
    (render_all (Reactor.handle_line r ~now:1 ~conn:0 "QUERY q1 k=2 b=1.0"));
  (* a degraded coreset-mode answer carries the certified size bracket
     on the wire; exact-mode answers (see test_degraded_staleness) have
     no bounds and render byte-identically to previous releases *)
  match Reactor.tick r ~now:2 with
  | [ { Reactor.response =
          Wire.Answer
            { id = "q1"; served = Wire.Index; degraded = true; bounds; _ } as resp;
        _;
      } ] -> (
      match bounds with
      | Some (lo, hi) ->
          if not (0 <= lo && lo <= hi) then
            Alcotest.failf "malformed bounds lo=%d hi=%d" lo hi;
          let line = Wire.render resp in
          let has s sub =
            let n = String.length sub in
            let rec go i = i + n <= String.length s
              && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "lo= on the wire" true (has line " lo=");
          Alcotest.(check bool) "hi= on the wire" true (has line " hi=")
      | None -> Alcotest.fail "coreset-mode degraded answer lost its bounds")
  | out ->
      Alcotest.failf "expected degraded answer, got [%s]"
        (String.concat "; " (render_all out))

(* ----- watchdog ----- *)

let test_watchdog_degrades () =
  (* zero stabilization budget: convergence stalls forever, so the
     watchdog must fire and flip the reactor into degraded mode *)
  let config =
    { Reactor.default_config with Reactor.stabilize_budget = 0; stall_after = 3 }
  in
  let metrics = Registry.create () in
  let r = reactor ~metrics ~config () in
  check_strings "leave admitted" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "LEAVE c1 host=2"));
  for now = 1 to 6 do
    let (_ : Reactor.output list) = Reactor.tick r ~now in
    ()
  done;
  Alcotest.(check string) "mode" "degraded" (Reactor.mode_name (Reactor.mode r));
  let fires = Registry.get (Registry.snapshot metrics) "daemon.watchdog_fires" in
  Alcotest.(check bool) "watchdog fired" true (fires >= 1)

(* ----- retry with backoff ----- *)

let test_retry_backoff () =
  let config =
    {
      Reactor.default_config with
      Reactor.ingest_fail = 1.0;
      max_attempts = 3;
      retry_base = 2;
      retry_jitter = 2;
    }
  in
  let trace = Trace.create () in
  let r = reactor ~trace ~config () in
  check_strings "join admitted" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "JOIN j1 host=15"));
  let rejected = ref None in
  for now = 1 to 60 do
    List.iter
      (fun (o : Reactor.output) ->
        match o.Reactor.response with
        | Wire.Rejected { id = "j1"; reason; attempts } ->
            rejected := Some (reason, attempts, now)
        | _ -> ())
      (Reactor.tick r ~now)
  done;
  (match !rejected with
  | Some ("ingest_failed", 3, _) -> ()
  | Some (reason, attempts, _) ->
      Alcotest.failf "wrong rejection %s/%d" reason attempts
  | None -> Alcotest.fail "never rejected");
  let retries =
    List.filter_map
      (function
        | Trace.Daemon_retry { round; due; attempt; _ } -> Some (round, due, attempt)
        | _ -> None)
      (Trace.events trace)
  in
  Alcotest.(check int) "two retries before giving up" 2 (List.length retries);
  List.iter
    (fun (round, due, _) ->
      Alcotest.(check bool) "backoff in the future" true (due > round))
    retries

(* ----- drain shutdown ----- *)

let test_drain_shutdown () =
  let r = reactor () in
  check_strings "work admitted" []
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "QUERY q1 k=2 b=1.0"));
  check_strings "draining" [ "DRAINING" ]
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "SHUTDOWN"));
  check_strings "new work shed" [ "SHED q2 class=query reason=draining" ]
    (render_all (Reactor.handle_line r ~now:0 ~conn:0 "QUERY q2 k=2 b=1.0"));
  let answered = ref false in
  let now = ref 0 in
  while (not (Reactor.drained r)) && !now < 100 do
    incr now;
    List.iter
      (fun (o : Reactor.output) ->
        match o.Reactor.response with
        | Wire.Answer { id = "q1"; _ } | Wire.Timeout { id = "q1"; _ } ->
            answered := true
        | _ -> ())
      (Reactor.tick r ~now:!now)
  done;
  Alcotest.(check bool) "drained" true (Reactor.drained r);
  Alcotest.(check bool) "queued query still answered" true !answered

(* ----- 1:1 response accounting under overload ----- *)

let overload_script n =
  let rng = Rng.create 99 in
  List.concat_map
    (fun t ->
      List.concat_map
        (fun i ->
          let id = Printf.sprintf "r%d_%d" t i in
          let pick = Rng.int rng 10 in
          let line =
            if pick < 5 then
              Printf.sprintf "MEAS %s src=%d dst=%d bw=%f" id (Rng.int rng 15)
                (Rng.int rng 15) (1. +. Rng.float rng 50.)
            else if pick < 8 then Printf.sprintf "QUERY %s k=2 b=1.0" id
            else if pick < 9 then Printf.sprintf "JOIN %s host=%d" id (Rng.int rng 16)
            else Printf.sprintf "LEAVE %s host=%d" id (Rng.int rng 16)
          in
          [ Script.line ~at:t ~conn:0 line ])
        (range 12))
    (range n)

let test_overload_accounting () =
  let script = overload_script 10 in
  let r = reactor ~config:{ Reactor.default_config with Reactor.stabilize_budget = 2 } () in
  let events = Script.run r script in
  Alcotest.(check bool) "reactor drained" true (Reactor.drained r);
  (* exactly one response per request id, no silent drops *)
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (e : Script.event) ->
      let id =
        match e.Script.response with
        | Wire.Answer { id; _ }
        | Wire.Acked { id; _ }
        | Wire.Shed { id; _ }
        | Wire.Timeout { id; _ }
        | Wire.Rejected { id; _ } ->
            Some id
        | _ -> None
      in
      match id with
      | Some id -> Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
      | None -> ())
    events;
  List.iter
    (fun (e : Script.entry) ->
      let id = List.nth (String.split_on_char ' ' e.Script.line) 1 in
      match Hashtbl.find_opt tbl id with
      | Some 1 -> ()
      | Some k -> Alcotest.failf "request %s answered %d times" id k
      | None -> Alcotest.failf "request %s silently dropped" id)
    script;
  Alcotest.(check int) "every response matched a request" (List.length script)
    (Hashtbl.length tbl)

(* ----- replay determinism ----- *)

let test_replay_determinism () =
  let run () =
    let metrics = Registry.create () in
    let trace = Trace.create () in
    let r =
      Reactor.create ~metrics ~trace
        { Reactor.default_config with Reactor.ingest_fail = 0.3; stabilize_budget = 2 }
        (dyn ~seed:21 ~n:16 ())
    in
    let events = Script.run r (overload_script 8) in
    (Script.transcript events, Trace.to_jsonl trace)
  in
  let t1, tr1 = run () in
  let t2, tr2 = run () in
  Alcotest.(check bool) "transcripts byte-identical" true (String.equal t1 t2);
  Alcotest.(check bool) "traces byte-identical" true (String.equal tr1 tr2);
  Alcotest.(check bool) "transcript non-trivial" true (String.length t1 > 100)

(* ----- lifecycle: rotation + corruption fallback ----- *)

let tmpname suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bwc_daemon_%d_%s" (Unix.getpid ()) suffix)

let cleanup path =
  List.iter
    (fun g ->
      let p = Snapshot.gen_path path g in
      if Sys.file_exists p then Sys.remove p)
    [ 0; 1; 2; 3 ]

let test_rotate_keeps_generations () =
  let path = tmpname "rot.bwcsnap" in
  cleanup path;
  let d = dyn ~seed:31 () in
  let snap () =
    match Lifecycle.snapshot ~keep:3 ~path d with
    | Ok bytes -> bytes
    | Error e -> Alcotest.failf "snapshot failed: %s" (Codec.error_to_string e)
  in
  let (_ : int) = snap () in
  let (_ : int) = snap () in
  let (_ : int) = snap () in
  let (_ : int) = snap () in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "generation %d exists" g)
        true
        (Sys.file_exists (Snapshot.gen_path path g)))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "generation 3 fell off" false
    (Sys.file_exists (Snapshot.gen_path path 3));
  (* rotating garbage is refused without touching the chain *)
  let before = Codec.read_file path in
  (match Snapshot.rotate ~keep:3 ~path "not a snapshot" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rotate accepted garbage");
  Alcotest.(check bool) "newest image untouched" true
    (String.equal before (Codec.read_file path));
  cleanup path

let test_corrupt_fallback_across_generations () =
  let path = tmpname "fb.bwcsnap" in
  cleanup path;
  let d = dyn ~seed:41 () in
  let members_before = Dynamic.members d in
  let snap () =
    match Lifecycle.snapshot ~keep:3 ~path d with
    | Ok (_ : int) -> ()
    | Error e -> Alcotest.failf "snapshot failed: %s" (Codec.error_to_string e)
  in
  snap ();
  snap ();
  snap ();
  (* corrupt the two newest generations on disk; restart must fall back
     to generation 2 and still boot warm *)
  let rng = Rng.create 5 in
  List.iter
    (fun (g, mode) ->
      let p = Snapshot.gen_path path g in
      Codec.write_file p (Fault.corrupt_snapshot ~rng mode (Codec.read_file p)))
    [ (0, Fault.Flip_bits 13); (1, Fault.Truncate 40) ];
  let metrics = Registry.create () in
  let boot =
    Lifecycle.boot ~metrics ~keep:3 ~path
      ~cold:(fun () -> Alcotest.fail "must not cold start")
      ()
  in
  Alcotest.(check bool) "warm" true boot.Lifecycle.warm;
  Alcotest.(check (option int)) "generation 2 won" (Some 2) boot.Lifecycle.generation;
  Alcotest.(check (list int)) "membership restored" members_before
    (Dynamic.members boot.Lifecycle.system);
  Alcotest.(check int) "fallback counted" 1
    (Registry.get (Registry.snapshot metrics) "persist.generation_fallbacks");
  (* all generations corrupt -> typed errors for each, cold fallback *)
  let rng = Rng.create 6 in
  List.iter
    (fun g ->
      let p = Snapshot.gen_path path g in
      Codec.write_file p (Fault.corrupt_snapshot ~rng (Fault.Flip_bits 17) (Codec.read_file p)))
    [ 0; 1; 2 ];
  let cold_hit = ref false in
  let boot2 =
    Lifecycle.boot ~keep:3 ~path
      ~cold:(fun () ->
        cold_hit := true;
        d)
      ()
  in
  Alcotest.(check bool) "cold fallback" true !cold_hit;
  Alcotest.(check bool) "not warm" false boot2.Lifecycle.warm;
  Alcotest.(check int) "every generation reported" 3
    (List.length boot2.Lifecycle.rejected);
  cleanup path

let () =
  Alcotest.run "bwc_daemon"
    [
      ( "wire",
        [
          Alcotest.test_case "parse" `Quick test_wire_parse;
          Alcotest.test_case "render" `Quick test_wire_render;
        ] );
      ( "reactor",
        [
          Alcotest.test_case "immediate requests" `Quick test_immediate;
          Alcotest.test_case "shed queue_full" `Quick test_shed_queue_full;
          Alcotest.test_case "shed rate_limit" `Quick test_shed_rate_limit;
          Alcotest.test_case "shed pressure" `Quick test_shed_pressure;
          Alcotest.test_case "deadline timeout" `Quick test_deadline_timeout;
          Alcotest.test_case "degraded staleness" `Quick test_degraded_staleness;
          Alcotest.test_case "degraded coreset bounds" `Quick test_degraded_coreset_bounds;
          Alcotest.test_case "watchdog degrades" `Quick test_watchdog_degrades;
          Alcotest.test_case "retry backoff" `Quick test_retry_backoff;
          Alcotest.test_case "drain shutdown" `Quick test_drain_shutdown;
          Alcotest.test_case "overload accounting" `Quick test_overload_accounting;
          Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "rotate keeps generations" `Quick
            test_rotate_keeps_generations;
          Alcotest.test_case "corrupt fallback" `Quick
            test_corrupt_fallback_across_generations;
        ] );
    ]
