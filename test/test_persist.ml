(* Tests for bwc_persist: container hygiene (every corruption mode maps
   to a typed error, never an exception), snapshot round-trip byte
   identity, restart-without-reconvergence (a warm restore is already at
   the fixed point and behaves byte-identically to the system that never
   crashed), graceful degradation to cold start, detector mid-lease
   restore, and the crash-restart chaos harness. *)

module Rng = Bwc_stats.Rng
module Fault = Bwc_sim.Fault
module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module Protocol = Bwc_core.Protocol
module Detector = Bwc_core.Detector
module System = Bwc_core.System
module Dynamic = Bwc_core.Dynamic
module Ensemble = Bwc_predtree.Ensemble
module Codec = Bwc_persist.Codec
module Snapshot = Bwc_persist.Snapshot
module Chaos = Bwc_persist.Chaos

let dataset ~seed n =
  Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed) ~name:"persist-ds"
    { Bwc_dataset.Planetlab.hp_target with n }

let system ?detector ?(seed = 7) ?(n = 24) () =
  System.create ~seed ?detector (dataset ~seed:(seed + 1) n)

let unwrap_system = function
  | Snapshot.Restored_system s -> s
  | Snapshot.Restored_dynamic _ -> Alcotest.fail "expected a system snapshot"

let decode_system bytes =
  match Snapshot.decode bytes with
  | Ok r -> unwrap_system r
  | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)

let err_name = function
  | Codec.Bad_magic -> "bad_magic"
  | Codec.Bad_version _ -> "bad_version"
  | Codec.Truncated -> "truncated"
  | Codec.Bad_checksum -> "bad_checksum"
  | Codec.Corrupt _ -> "corrupt"

(* ----- codec container ----- *)

let test_container_roundtrip () =
  let payload = "i 42\nf 0x1.8p+1\ns 5 he\nlo\n" in
  match Codec.decode (Codec.encode payload) with
  | Ok p -> Alcotest.(check string) "payload back" payload p
  | Error e -> Alcotest.failf "container: %s" (Codec.error_to_string e)

let test_container_rejects () =
  let good = Codec.encode "i 1\n" in
  let check_err name want bytes =
    match Codec.decode bytes with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error e -> Alcotest.(check string) name want (err_name e)
  in
  check_err "garbage" "bad_magic" "hello world\nnot a snapshot\n";
  check_err "empty" "bad_magic" "";
  check_err "future version" "bad_version" "BWCSNAP 999\nlen 0 crc 00000000\n";
  check_err "cut header" "truncated" "BWCSNAP";
  check_err "cut payload" "truncated" (String.sub good 0 (String.length good - 2));
  (* flip one payload bit *)
  let flipped = Bytes.of_string good in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  check_err "bit flip" "bad_checksum" (Bytes.to_string flipped);
  (* trailing garbage and mangled headers are structural corruption *)
  check_err "trailing bytes" "corrupt" (good ^ "x");
  check_err "bad header" "corrupt" "BWCSNAP 1\nlen x crc zzzzzzzz\n"

let test_float_roundtrip_exact () =
  let w = Codec.W.create () in
  let values =
    [ 0.; -0.; 1.5; Float.pi; 1e-308; 1.0 /. 3.0; infinity; neg_infinity; 4.25e17 ]
  in
  List.iter (Codec.W.float w) values;
  let r = Codec.R.create (Codec.W.contents w) in
  List.iter
    (fun v ->
      let back = Codec.R.float r in
      if Int64.bits_of_float back <> Int64.bits_of_float v then
        Alcotest.failf "float %h round-tripped to %h" v back)
    values

(* ----- snapshot round trips ----- *)

let test_snapshot_byte_identity () =
  let sys = system () in
  (* force the lazy index so its counts are in the snapshot too *)
  ignore (System.query_centralized sys ~k:3 ~b:30.0 : int list option);
  let bytes = Snapshot.encode (`System sys) in
  let again = Snapshot.encode (`System (decode_system bytes)) in
  Alcotest.(check bool) "re-snapshot byte-identical" true (String.equal bytes again)

let test_snapshot_restart_without_reconvergence () =
  let sys = system ~n:32 () in
  let restored = decode_system (Snapshot.encode (`System sys)) in
  (* quiesced before the crash => nothing left to reconverge *)
  let rounds = Protocol.run_aggregation (System.protocol restored) in
  Alcotest.(check int) "already at the fixed point" 1 rounds;
  Alcotest.(check int) "no messages resent"
    (Protocol.messages_sent (System.protocol restored))
    (Protocol.messages_sent (System.protocol restored));
  (* same submission-RNG state: the restored system serves the same
     queries as the original from here on *)
  for _ = 1 to 10 do
    let a = System.query sys ~k:4 ~b:25.0 in
    let b = System.query restored ~k:4 ~b:25.0 in
    Alcotest.(check bool) "same query answers" true (a.Bwc_core.Query.cluster = b.Bwc_core.Query.cluster)
  done

let test_snapshot_future_is_deterministic () =
  (* run original and restored copies forward: byte-identical snapshots
     at every step, because the whole engine state (round clock, RNG
     stream) survived *)
  let sys = system ~seed:11 () in
  let restored = decode_system (Snapshot.encode (`System sys)) in
  for _ = 1 to 3 do
    ignore (Protocol.run_round (System.protocol sys) : bool);
    ignore (Protocol.run_round (System.protocol restored) : bool)
  done;
  Alcotest.(check bool) "futures agree" true
    (String.equal
       (Snapshot.encode (`System sys))
       (Snapshot.encode (`System restored)))

let test_snapshot_dynamic_roundtrip () =
  let dyn = Dynamic.create ~seed:5 (dataset ~seed:6 20) in
  Dynamic.leave dyn (List.hd (Dynamic.members dyn));
  ignore (Dynamic.query_centralized dyn ~k:3 ~b:30.0 : int list option);
  let bytes = Snapshot.encode (`Dynamic dyn) in
  let restored =
    match Snapshot.decode bytes with
    | Ok (Snapshot.Restored_dynamic d) -> d
    | Ok (Snapshot.Restored_system _) -> Alcotest.fail "wrong kind"
    | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)
  in
  Alcotest.(check (list int)) "members survive" (Dynamic.members dyn)
    (Dynamic.members restored);
  let again = Snapshot.encode (`Dynamic restored) in
  Alcotest.(check bool) "re-snapshot byte-identical" true (String.equal bytes again);
  (* the restored eviction hook still maintains the restored index *)
  let victim = List.hd (Dynamic.members restored) in
  Dynamic.leave restored victim;
  Alcotest.(check bool) "index tracked the leave" false
    (Bwc_core.Find_cluster.Index.is_member (Dynamic.index restored) victim)

let test_snapshot_coreset_roundtrip () =
  let dyn =
    Dynamic.create ~seed:5 ~index_mode:(Dynamic.Coreset 6) (dataset ~seed:6 20)
  in
  Dynamic.leave dyn (List.hd (Dynamic.members dyn));
  (* force + exercise the coreset through churn so the snapshot carries a
     non-trivial maintained state *)
  let probe d =
    let cluster, iv = Dynamic.query_bounds d ~k:3 ~b:30.0 in
    (cluster, iv.Bwc_core.Find_cluster.Coreset.lo, iv.Bwc_core.Find_cluster.Coreset.hi)
  in
  let before = probe dyn in
  let bytes = Snapshot.encode (`Dynamic dyn) in
  let restored =
    match Snapshot.decode bytes with
    | Ok (Snapshot.Restored_dynamic d) -> d
    | Ok (Snapshot.Restored_system _) -> Alcotest.fail "wrong kind"
    | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)
  in
  (match Dynamic.index_mode restored with
  | Dynamic.Coreset 6 -> ()
  | _ -> Alcotest.fail "index mode did not survive the round trip");
  let cor = Option.get (Dynamic.coreset_opt restored) in
  Alcotest.(check (list int)) "coreset members survive" (Dynamic.members dyn |> List.sort compare)
    (Bwc_core.Find_cluster.Coreset.members cor);
  (* summaries are rebuilt from topology alone, so the restored bounds
     are identical, and a re-snapshot is byte-identical *)
  Alcotest.(check bool) "bounds survive" true (probe restored = before);
  let again = Snapshot.encode (`Dynamic restored) in
  Alcotest.(check bool) "re-snapshot byte-identical" true (String.equal bytes again);
  (* the restored eviction/churn path still maintains the coreset *)
  let victim = List.hd (Dynamic.members restored) in
  Dynamic.leave restored victim;
  Alcotest.(check bool) "coreset tracked the leave" false
    (Bwc_core.Find_cluster.Coreset.is_member (Dynamic.coreset restored) victim)

let test_snapshot_mid_convergence () =
  (* crash in the middle of aggregation: in-flight messages die with the
     process, and the retransmission layer still drives the restored
     system to the same fixed point a never-crashed run reaches *)
  let ds = dataset ~seed:3 24 in
  let reference = System.create ~seed:9 ds in
  let sys = System.create ~seed:9 ~aggregation_rounds:3 ds in
  let restored = decode_system (Snapshot.encode (`System sys)) in
  let (_ : int) = Protocol.run_aggregation (System.protocol restored) in
  let p_ref = System.protocol reference and p_res = System.protocol restored in
  let n = Bwc_dataset.Dataset.size ds in
  let classes = System.classes reference in
  for h = 0 to n - 1 do
    for cls = 0 to Bwc_core.Classes.count classes - 1 do
      Alcotest.(check int)
        (Printf.sprintf "max_reachable host %d class %d" h cls)
        (Protocol.max_reachable p_ref h ~cls)
        (Protocol.max_reachable p_res h ~cls)
    done
  done

(* ----- detector state ----- *)

let test_snapshot_detector_mid_lease () =
  let sys = system ~detector:Detector.default_config ~n:16 () in
  let p = System.protocol sys in
  let victim = List.hd (List.rev (Ensemble.members (System.framework sys))) in
  Protocol.crash_host p victim;
  (* run only until suspicion can exist, not until confirmation *)
  for _ = 1 to Detector.default_config.Detector.suspect_after + 2 do
    ignore (Protocol.run_round p : bool)
  done;
  let restored = decode_system (Snapshot.encode (`System sys)) in
  let pr = System.protocol restored in
  (* the crashed-but-not-yet-evicted member restores crashed: a query
     submitted there is an immediate miss *)
  let q = Protocol.query pr ~at:victim ~k:2 ~cls:0 in
  Alcotest.(check bool) "crashed host restores crashed" false (Bwc_core.Query.found q);
  (* leases kept running: the restored survivors confirm the death and
     evict without re-observing the full silence window *)
  let (_ : int) = Protocol.run_aggregation ~max_rounds:400 pr in
  Alcotest.(check bool) "victim evicted after restore" false
    (Ensemble.is_member (System.framework restored) victim);
  Alcotest.(check bool) "original also evicts" true
    (let (_ : int) = Protocol.run_aggregation ~max_rounds:400 p in
     not (Ensemble.is_member (System.framework sys) victim))

(* ----- corruption / graceful degradation ----- *)

let corruption_modes =
  [
    ("truncate", Fault.Truncate 100, [ "truncated" ]);
    ("truncate to nothing", Fault.Truncate 0, [ "bad_magic"; "truncated" ]);
    ("bit flips", Fault.Flip_bits 16, [ "bad_checksum"; "corrupt"; "bad_magic"; "truncated"; "bad_version" ]);
    ("stale version", Fault.Stale_version, [ "bad_version" ]);
  ]

let test_corruption_never_panics () =
  let sys = system () in
  let bytes = Snapshot.encode (`System sys) in
  let rng = Rng.create 99 in
  List.iter
    (fun (name, mode, allowed) ->
      let mangled = Fault.corrupt_snapshot ~rng mode bytes in
      match Snapshot.decode mangled with
      | Ok _ -> Alcotest.failf "%s: corrupted snapshot accepted" name
      | Error e ->
          if not (List.mem (err_name e) allowed) then
            Alcotest.failf "%s: unexpected error class %s" name
              (Codec.error_to_string e))
    corruption_modes;
  (* many random heavy mutations: decode is total *)
  for i = 1 to 50 do
    let mangled = Fault.corrupt_snapshot ~rng:(Rng.create i) (Fault.Flip_bits 64) bytes in
    match Snapshot.decode mangled with
    | Ok _ -> Alcotest.failf "mutation %d accepted" i
    | Error (_ : Codec.error) -> ()
  done

let test_restore_or_cold_falls_back () =
  let metrics = Registry.create () in
  let trace = Trace.create () in
  let sys = system () in
  let bytes = Snapshot.encode ~metrics ~trace (`System sys) in
  let mangled = Fault.corrupt_snapshot ~rng:(Rng.create 1) Fault.Stale_version bytes in
  let cold_calls = ref 0 in
  let cold () =
    incr cold_calls;
    Snapshot.Restored_system (system ())
  in
  (* warm path: cold never invoked *)
  let _, status = Snapshot.restore_or_cold ~metrics ~trace ~cold bytes in
  Alcotest.(check bool) "warm" true (status = `Warm);
  Alcotest.(check int) "no cold yet" 0 !cold_calls;
  (* rejected snapshot: cold fallback, queries still served *)
  let restored, status = Snapshot.restore_or_cold ~metrics ~trace ~cold mangled in
  (match status with
  | `Cold (Codec.Bad_version 999) -> ()
  | `Cold e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
  | `Warm -> Alcotest.fail "accepted a stale snapshot");
  Alcotest.(check int) "cold invoked once" 1 !cold_calls;
  let q = System.query (unwrap_system restored) ~k:3 ~b:25.0 in
  Alcotest.(check bool) "query served after fallback" true
    (match q.Bwc_core.Query.cluster with Some _ -> true | None -> true);
  (* observability of the whole episode *)
  let count name = Registry.get (Registry.snapshot metrics) name in
  Alcotest.(check int) "persist.snapshots" 1 (count "persist.snapshots");
  Alcotest.(check int) "persist.restores" 1 (count "persist.restores");
  Alcotest.(check int) "persist.restore_rejected" 1 (count "persist.restore_rejected");
  Alcotest.(check int) "persist.cold_starts" 1 (count "persist.cold_starts");
  let events = Trace.events trace in
  let has p = List.exists p events in
  Alcotest.(check bool) "snapshot_write traced" true
    (has (function Trace.Snapshot_write _ -> true | _ -> false));
  Alcotest.(check bool) "rejection traced" true
    (has (function Trace.Restore_rejected _ -> true | _ -> false));
  Alcotest.(check bool) "cold restore traced" true
    (has (function Trace.Restore { warm = false; _ } -> true | _ -> false))

(* ----- save/load ----- *)

let test_save_load_file () =
  let path = Filename.temp_file "bwcsnap" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sys = system () in
      Snapshot.save (`System sys) path;
      let restored = match Snapshot.load path with
        | Ok r -> unwrap_system r
        | Error e -> Alcotest.failf "load: %s" (Codec.error_to_string e)
      in
      Alcotest.(check bool) "identical bytes after reload" true
        (String.equal (Snapshot.encode (`System sys))
           (Snapshot.encode (`System restored))))

(* ----- rotation ----- *)

let with_rotation_chain f =
  let path = Filename.temp_file "bwcsnap_rot" ".snap" in
  (* temp_file pre-creates an empty file; we only want the fresh name,
     otherwise rotate correctly shifts the empty image into gen 1 *)
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun g ->
          let p = Snapshot.gen_path path g in
          try Sys.remove p with Sys_error _ -> ())
        [ 0; 1; 2; 3 ])
    (fun () -> f path)

let test_rotate_never_displaces_valid_image () =
  with_rotation_chain (fun path ->
      let sys = system ~seed:51 () in
      let good = Snapshot.encode (`System sys) in
      (match Snapshot.rotate ~keep:3 ~path good with
      | Ok () -> ()
      | Error e -> Alcotest.failf "rotate: %s" (Codec.error_to_string e));
      (* garbage is refused up front: the chain must not shift and the
         only valid image must survive untouched *)
      (match Snapshot.rotate ~keep:3 ~path "garbage, not a container" with
      | Error Codec.Bad_magic -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Codec.error_to_string e)
      | Ok () -> Alcotest.fail "rotate accepted garbage");
      Alcotest.(check bool) "valid image still newest" true
        (String.equal good (Codec.read_file path));
      Alcotest.(check bool) "no spurious generation 1" false
        (Sys.file_exists (Snapshot.gen_path path 1)))

let test_rotate_fallback_across_generations () =
  with_rotation_chain (fun path ->
      (* three distinct generations, newest last *)
      let images =
        List.map
          (fun seed -> Snapshot.encode (`System (system ~seed ())))
          [ 61; 62; 63 ]
      in
      List.iter
        (fun img ->
          match Snapshot.rotate ~keep:3 ~path img with
          | Ok () -> ()
          | Error e -> Alcotest.failf "rotate: %s" (Codec.error_to_string e))
        images;
      (* on-disk: gen 0 = seed 63, gen 1 = seed 62, gen 2 = seed 61 *)
      let metrics = Registry.create () in
      (match Snapshot.load_any ~metrics ~keep:3 path with
      | Ok (r, 0) ->
          Alcotest.(check bool) "newest wins when intact" true
            (String.equal (List.nth images 2)
               (Snapshot.encode (`System (unwrap_system r))))
      | Ok (_, g) -> Alcotest.failf "wrong generation %d" g
      | Error _ -> Alcotest.fail "load_any failed on intact chain");
      (* corrupt the two newest generations with different modes: the
         restore must walk past both and land on generation 2 *)
      let rng = Rng.create 17 in
      Codec.write_file path
        (Fault.corrupt_snapshot ~rng (Fault.Flip_bits 11) (Codec.read_file path));
      let g1 = Snapshot.gen_path path 1 in
      Codec.write_file g1
        (Fault.corrupt_snapshot ~rng Fault.Stale_version (Codec.read_file g1));
      (match Snapshot.load_any ~metrics ~keep:3 path with
      | Ok (r, 2) ->
          Alcotest.(check bool) "oldest generation restores" true
            (String.equal (List.nth images 0)
               (Snapshot.encode (`System (unwrap_system r))))
      | Ok (_, g) -> Alcotest.failf "restored wrong generation %d" g
      | Error _ -> Alcotest.fail "fallback generation not restored");
      Alcotest.(check int) "fallback counted" 1
        (Registry.get (Registry.snapshot metrics) "persist.generation_fallbacks");
      (* corrupt the last one too: every generation reports a typed error *)
      let g2 = Snapshot.gen_path path 2 in
      Codec.write_file g2
        (Fault.corrupt_snapshot ~rng (Fault.Truncate 30) (Codec.read_file g2));
      match Snapshot.load_any ~keep:3 path with
      | Ok _ -> Alcotest.fail "restored from a fully corrupt chain"
      | Error rejected ->
          Alcotest.(check (list int)) "every generation reported" [ 0; 1; 2 ]
            (List.map fst rejected))

(* ----- chaos harness ----- *)

let test_chaos_schedule () =
  let ds = dataset ~seed:21 20 in
  let make () = System.create ~seed:13 ds in
  let faults =
    Fault.create ~rng:(Rng.create 2)
      ~system_crashes:
        [
          { Fault.crash_round = 4; restore_after = 0; corrupt = None };
          { Fault.crash_round = 9; restore_after = 2; corrupt = Some (Fault.Flip_bits 8) };
          { Fault.crash_round = 15; restore_after = 1; corrupt = Some Fault.Stale_version };
          { Fault.crash_round = 20; restore_after = 0; corrupt = None };
        ]
      ()
  in
  let final, outcome =
    Chaos.run ~rng:(Rng.create 4) ~faults ~ticks:30 ~cold:make (make ())
  in
  Alcotest.(check int) "crashes" 4 outcome.Chaos.crashes;
  Alcotest.(check int) "warm restores" 2 outcome.Chaos.warm_restores;
  Alcotest.(check int) "cold restores" 2 outcome.Chaos.cold_restores;
  Alcotest.(check int) "rejections recorded" 2 (List.length outcome.Chaos.rejections);
  Alcotest.(check int) "downtime" 3 outcome.Chaos.downtime;
  (* the survivor serves queries and is at the fixed point *)
  let rounds = Protocol.run_aggregation (System.protocol final) in
  Alcotest.(check bool) "stable after chaos" true (rounds <= 2);
  let q = System.query final ~k:3 ~b:25.0 in
  Alcotest.(check bool) "query completes" true (q.Bwc_core.Query.hops >= 0)

(* ----- fault plan validation ----- *)

let test_fault_schedule_validation () =
  let bad mk = match mk () with
    | (_ : Fault.t) -> Alcotest.fail "invalid schedule accepted"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () ->
      Fault.create ~rng:(Rng.create 2)
        ~system_crashes:[ { Fault.crash_round = 0; restore_after = 0; corrupt = None } ]
        ());
  bad (fun () ->
      Fault.create ~rng:(Rng.create 2)
        ~system_crashes:[ { Fault.crash_round = 2; restore_after = -1; corrupt = None } ]
        ());
  bad (fun () ->
      Fault.create ~rng:(Rng.create 2)
        ~system_crashes:
          [
            { Fault.crash_round = 2; restore_after = 0; corrupt = None };
            { Fault.crash_round = 2; restore_after = 1; corrupt = None };
          ]
        ());
  bad (fun () ->
      Fault.create ~rng:(Rng.create 2)
        ~system_crashes:
          [ { Fault.crash_round = 2; restore_after = 0; corrupt = Some (Fault.Flip_bits 0) } ]
        ());
  (* corrupt_snapshot's stale header is the one the codec rejects *)
  let mangled = Fault.corrupt_snapshot ~rng:(Rng.create 1) Fault.Stale_version (Codec.encode "i 1\n") in
  match Codec.decode mangled with
  | Error (Codec.Bad_version 999) -> ()
  | Error e -> Alcotest.failf "stale version surfaced as %s" (Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "stale version accepted"

let () =
  Alcotest.run "bwc_persist"
    [
      ( "codec",
        [
          Alcotest.test_case "container round trip" `Quick test_container_roundtrip;
          Alcotest.test_case "container rejects" `Quick test_container_rejects;
          Alcotest.test_case "floats bit-exact" `Quick test_float_roundtrip_exact;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "byte identity" `Quick test_snapshot_byte_identity;
          Alcotest.test_case "restart without reconvergence" `Quick
            test_snapshot_restart_without_reconvergence;
          Alcotest.test_case "deterministic future" `Quick
            test_snapshot_future_is_deterministic;
          Alcotest.test_case "dynamic round trip" `Quick test_snapshot_dynamic_roundtrip;
          Alcotest.test_case "coreset round trip" `Quick test_snapshot_coreset_roundtrip;
          Alcotest.test_case "mid-convergence crash" `Quick test_snapshot_mid_convergence;
          Alcotest.test_case "detector mid-lease" `Quick test_snapshot_detector_mid_lease;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
          Alcotest.test_case "rotate refuses garbage" `Quick
            test_rotate_never_displaces_valid_image;
          Alcotest.test_case "rotate fallback chain" `Quick
            test_rotate_fallback_across_generations;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "corruption never panics" `Quick test_corruption_never_panics;
          Alcotest.test_case "cold fallback" `Quick test_restore_or_cold_falls_back;
          Alcotest.test_case "schedule validation" `Quick test_fault_schedule_validation;
        ] );
      ( "chaos",
        [ Alcotest.test_case "crash-restart schedule" `Quick test_chaos_schedule ] );
    ]
