(* Tests for bwc_obs: registry semantics (handles, snapshots, diff,
   JSON round-trip), trace sinks (ordering, ring capacity, JSONL), span
   timers, and the end-to-end determinism contract — the same seed and
   fault plan must produce a byte-identical JSONL trace. *)

module Registry = Bwc_obs.Registry
module Trace = Bwc_obs.Trace
module Span = Bwc_obs.Span
module Rng = Bwc_stats.Rng
module Engine = Bwc_sim.Engine
module Fault = Bwc_sim.Fault

(* ----- registry: handles ----- *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "a.count" in
  Registry.Counter.incr c;
  Registry.Counter.incr ~by:4 c;
  Alcotest.(check int) "value" 5 (Registry.Counter.value c);
  (* get-or-create: the same (name, labels) returns the same cell *)
  let c' = Registry.counter r "a.count" in
  Registry.Counter.incr c';
  Alcotest.(check int) "shared cell" 6 (Registry.Counter.value c);
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Registry.Counter.incr: negative increment") (fun () ->
      Registry.Counter.incr ~by:(-1) c)

let test_labels_normalized () =
  let r = Registry.create () in
  let a = Registry.counter r ~labels:[ ("x", "1"); ("y", "2") ] "m" in
  let b = Registry.counter r ~labels:[ ("y", "2"); ("x", "1") ] "m" in
  Registry.Counter.incr a;
  Alcotest.(check int) "label order irrelevant" 1 (Registry.Counter.value b);
  let c = Registry.counter r ~labels:[ ("x", "2") ] "m" in
  Registry.Counter.incr ~by:7 c;
  Alcotest.(check int) "distinct labels distinct cells" 1 (Registry.Counter.value a)

let test_type_mismatch () =
  let r = Registry.create () in
  let (_ : Registry.Counter.t) = Registry.counter r "m" in
  Alcotest.check_raises "counter reopened as gauge"
    (Invalid_argument "Registry.gauge: m already registered with a different type")
    (fun () -> ignore (Registry.gauge r "m"))

let test_gauge () =
  let r = Registry.create () in
  let g = Registry.gauge r "g" in
  Registry.Gauge.set g 10;
  Registry.Gauge.add g (-3);
  Alcotest.(check int) "set/add" 7 (Registry.Gauge.value g)

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r "h" in
  List.iter (Registry.Histogram.observe h) [ 0; 1; 2; 3; 4; 1000 ];
  Alcotest.(check int) "count" 6 (Registry.Histogram.count h);
  Alcotest.(check int) "sum" 1010 (Registry.Histogram.sum h);
  Alcotest.(check int) "max" 1000 (Registry.Histogram.max_value h);
  (* bucket 0 = {0}, bucket i >= 1 = [2^(i-1), 2^i) *)
  Alcotest.(check (pair int int)) "bucket 0" (0, 0) (Registry.Histogram.bucket_bounds 0);
  Alcotest.(check (pair int int)) "bucket 1" (1, 1) (Registry.Histogram.bucket_bounds 1);
  Alcotest.(check (pair int int)) "bucket 3" (4, 7) (Registry.Histogram.bucket_bounds 3);
  (match Registry.find (Registry.snapshot r) "h" with
  | Some (Registry.Histogram { buckets; _ }) ->
      Alcotest.(check (list (pair int int)))
        "buckets" [ (0, 1); (1, 1); (2, 2); (3, 1); (10, 1) ] buckets
  | _ -> Alcotest.fail "histogram sample expected");
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Registry.Histogram.observe: negative sample") (fun () ->
      Registry.Histogram.observe h (-1))

(* ----- registry: snapshots ----- *)

let sample_registry () =
  let r = Registry.create () in
  Registry.Counter.incr ~by:3 (Registry.counter r "z.count");
  Registry.Counter.incr
    (Registry.counter r ~labels:[ ("cause", "loss") ] "a.drops");
  Registry.Counter.incr ~by:2
    (Registry.counter r ~labels:[ ("cause", "purge") ] "a.drops");
  Registry.Gauge.set (Registry.gauge r "g.depth") 4;
  let h = Registry.histogram r "q.hops" in
  List.iter (Registry.Histogram.observe h) [ 0; 2; 5 ];
  r

let test_snapshot_sorted () =
  let snap = Registry.snapshot (sample_registry ()) in
  let names = List.map (fun (n, _, _) -> n) snap in
  Alcotest.(check (list string))
    "sorted by (name, labels)"
    [ "a.drops"; "a.drops"; "g.depth"; "q.hops"; "z.count" ]
    names;
  Alcotest.(check int) "labelled get" 2
    (Registry.get snap ~labels:[ ("cause", "purge") ] "a.drops");
  Alcotest.(check int) "sum over labels" 3 (Registry.sum_by_name snap "a.drops");
  Alcotest.(check int) "absent metric reads 0" 0 (Registry.get snap "nope")

let test_diff_and_reset () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  let g = Registry.gauge r "g" in
  let h = Registry.histogram r "h" in
  Registry.Counter.incr ~by:5 c;
  Registry.Gauge.set g 10;
  Registry.Histogram.observe h 3;
  let before = Registry.snapshot r in
  Registry.Counter.incr ~by:2 c;
  Registry.Gauge.set g 4;
  Registry.Histogram.observe h 64;
  let after = Registry.snapshot r in
  let d = Registry.diff ~before ~after in
  Alcotest.(check int) "counter delta" 2 (Registry.get d "c");
  Alcotest.(check int) "gauge keeps after" 4 (Registry.get d "g");
  (match Registry.find d "h" with
  | Some (Registry.Histogram { count; sum; max_value; buckets }) ->
      Alcotest.(check int) "hist count delta" 1 count;
      Alcotest.(check int) "hist sum delta" 64 sum;
      Alcotest.(check int) "hist max keeps after" 64 max_value;
      Alcotest.(check (list (pair int int))) "hist bucket delta" [ (7, 1) ] buckets
  | _ -> Alcotest.fail "histogram sample expected");
  Registry.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Registry.Counter.value c);
  Alcotest.(check int) "handles stay valid" 0 (Registry.Histogram.count h);
  Registry.Counter.incr c;
  Alcotest.(check int) "and keep working" 1 (Registry.Counter.value c)

let test_json_round_trip () =
  let snap = Registry.snapshot (sample_registry ()) in
  let json = Registry.to_json snap in
  (match Registry.of_json json with
  | Ok parsed -> Alcotest.(check bool) "round-trips exactly" true (parsed = snap)
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* canonical: re-rendering the parsed snapshot is byte-identical *)
  (match Registry.of_json json with
  | Ok parsed -> Alcotest.(check string) "canonical" json (Registry.to_json parsed)
  | Error _ -> ());
  match Registry.of_json "{\"metrics\":" with
  | Ok _ -> Alcotest.fail "truncated JSON must not parse"
  | Error _ -> ()

let test_text_rendering () =
  let text = Registry.to_text (Registry.snapshot (sample_registry ())) in
  let has sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "labelled counter line" true (has "a.drops{cause=purge} 2");
  Alcotest.(check bool) "gauge line" true (has "g.depth 4 gauge");
  Alcotest.(check bool) "histogram line" true (has "q.hops histogram count=3")

(* ----- trace sink ----- *)

let test_trace_order_and_jsonl () =
  let tr = Trace.create () in
  Trace.emit tr (Trace.Round_start { round = 1 });
  Trace.emit tr
    (Trace.Send
       { round = 1; msg = 0; kind = Trace.Aggregate; bytes = 96; lc = 1; src = 0; dst = 2 });
  Trace.emit tr
    (Trace.Drop
       { round = 1; msg = 0; kind = Trace.Aggregate; bytes = 96; src = 0; dst = 2;
         cause = Trace.Fault_loss });
  Trace.emit tr (Trace.Quiesce { round = 2 });
  Alcotest.(check int) "emitted" 4 (Trace.emitted tr);
  Alcotest.(check int) "kept" 4 (List.length (Trace.events tr));
  Alcotest.(check string) "jsonl"
    "{\"ev\":\"round_start\",\"round\":1}\n\
     {\"ev\":\"send\",\"round\":1,\"msg\":0,\"kind\":\"aggregate\",\"bytes\":96,\"lc\":1,\"src\":0,\"dst\":2}\n\
     {\"ev\":\"drop\",\"round\":1,\"msg\":0,\"kind\":\"aggregate\",\"bytes\":96,\"src\":0,\"dst\":2,\"cause\":\"fault_loss\"}\n\
     {\"ev\":\"quiesce\",\"round\":2}\n"
    (Trace.to_jsonl tr);
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events tr))

let test_trace_jsonl_round_trip () =
  (* every event constructor renders and parses back exactly *)
  let evs =
    [
      Trace.Round_start { round = 1 };
      Trace.Send
        { round = 1; msg = 3; kind = Trace.Heartbeat; bytes = 8; lc = 4; src = 1; dst = 0 };
      Trace.Deliver
        { round = 2; msg = 3; kind = Trace.Heartbeat; bytes = 8; lc = 5; src = 1; dst = 0 };
      Trace.Drop
        { round = 2; msg = 4; kind = Trace.Ack; bytes = 24; src = 0; dst = 1;
          cause = Trace.Dead_dst };
      Trace.Retransmit { round = 3; src = 0; dst = 1 };
      Trace.Crash { round = 3; node = 2 };
      Trace.Restart { round = 4; node = 2 };
      Trace.Query_hop { round = 5; msg = 9; bytes = 16; src = 2; dst = 3 };
      Trace.Suspect { round = 5; by = 1; node = 2 };
      Trace.Confirm_dead { round = 6; by = 1; node = 2 };
      Trace.Regraft { round = 6; node = 3; new_parent = 1 };
      Trace.Quiesce { round = 7 };
      Trace.Snapshot_write { round = 7; bytes = 1024 };
      Trace.Restore { round = 8; warm = true };
      Trace.Restore_rejected { round = 9; reason = "bad \"magic\"\nline" };
    ]
  in
  let tr = Trace.create () in
  List.iter (Trace.emit tr) evs;
  (match Trace.of_jsonl (Trace.to_jsonl tr) with
  | Ok parsed -> Alcotest.(check bool) "round-trips exactly" true (parsed = evs)
  | Error e -> Alcotest.failf "of_jsonl failed: %s" e);
  (match Trace.of_jsonl "{\"ev\":\"send\",\"round\":1}\n" with
  | Ok _ -> Alcotest.fail "field-poor send must not parse"
  | Error _ -> ());
  Alcotest.(check bool)
    "unknown event rejected" true
    (match Trace.of_jsonl "{\"ev\":\"warp\",\"round\":1}" with
    | Error _ -> true
    | Ok _ -> false)

let test_trace_failure_events_jsonl () =
  (* the failure-detection lifecycle: crash, suspicion, confirmation,
     repair — rendered in emission order *)
  let tr = Trace.create () in
  Trace.emit tr (Trace.Crash { round = 7; node = 4 });
  Trace.emit tr (Trace.Suspect { round = 13; by = 1; node = 4 });
  Trace.emit tr (Trace.Confirm_dead { round = 17; by = 1; node = 4 });
  Trace.emit tr (Trace.Regraft { round = 17; node = 9; new_parent = 1 });
  Alcotest.(check string) "jsonl"
    "{\"ev\":\"crash\",\"round\":7,\"node\":4}\n\
     {\"ev\":\"suspect\",\"round\":13,\"by\":1,\"node\":4}\n\
     {\"ev\":\"confirm_dead\",\"round\":17,\"by\":1,\"node\":4}\n\
     {\"ev\":\"regraft\",\"round\":17,\"node\":9,\"new_parent\":1}\n"
    (Trace.to_jsonl tr)

let test_trace_ring_capacity () =
  let tr = Trace.create ~capacity:3 () in
  for round = 1 to 5 do
    Trace.emit tr (Trace.Round_start { round })
  done;
  Alcotest.(check int) "emitted counts everything" 5 (Trace.emitted tr);
  let rounds =
    List.map
      (function Trace.Round_start { round } -> round | _ -> -1)
      (Trace.events tr)
  in
  Alcotest.(check (list int)) "ring keeps the newest" [ 3; 4; 5 ] rounds;
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Trace.create: capacity < 1") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

(* ----- determinism: same seed + fault plan => byte-identical trace ----- *)

let engine_scenario () =
  let trace = Trace.create () in
  let metrics = Registry.create () in
  let faults =
    Fault.create ~drop:0.2 ~duplicate:0.1 ~jitter:2
      ~crashes:[ { Fault.node = 3; down_from = 2; up_at = 4 } ]
      ~metrics ~rng:(Rng.create 42) ()
  in
  let e = Engine.create ~faults ~metrics ~trace ~rng:(Rng.create 43) 8 in
  let source = Rng.create 44 in
  let budget = ref 40 in
  let (_ : [ `Stable of int | `Max_rounds ]) =
    Engine.run_until_stable e ~max_rounds:100 ~step:(fun id _ ->
        if !budget > 0 && id = 0 then begin
          decr budget;
          Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:(1 + Rng.int source 7) ();
          true
        end
        else false)
  in
  (Trace.to_jsonl trace, Registry.to_json (Registry.snapshot metrics))

let test_same_seed_identical_trace () =
  let trace1, metrics1 = engine_scenario () in
  let trace2, metrics2 = engine_scenario () in
  Alcotest.(check string) "byte-identical JSONL trace" trace1 trace2;
  Alcotest.(check string) "byte-identical metrics JSON" metrics1 metrics2;
  Alcotest.(check bool) "trace is non-trivial" true (String.length trace1 > 500)

let protocol_scenario () =
  let space =
    Bwc_metric.Space.of_dmatrix
      (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create 50) ~n:24 ())
  in
  let metrics = Registry.create () in
  let trace = Trace.create () in
  let faults = Fault.create ~drop:0.15 ~jitter:1 ~metrics ~rng:(Rng.create 51) () in
  let ens = Bwc_predtree.Ensemble.build ~rng:(Rng.create 52) ~metrics space in
  let classes = Bwc_core.Classes.make ~c:1000.0 [ 10.0; 20.0; 40.0 ] in
  let p =
    Bwc_core.Protocol.create ~rng:(Rng.create 53) ~n_cut:4 ~faults ~metrics ~trace
      ~classes ens
  in
  let (_ : int) = Bwc_core.Protocol.run_aggregation p in
  for at = 0 to 11 do
    ignore (Bwc_core.Protocol.query p ~at ~k:3 ~cls:1)
  done;
  (Trace.to_jsonl trace, Registry.to_json (Registry.snapshot metrics))

let test_protocol_trace_deterministic () =
  let trace1, metrics1 = protocol_scenario () in
  let trace2, metrics2 = protocol_scenario () in
  Alcotest.(check string) "protocol trace byte-identical" trace1 trace2;
  Alcotest.(check string) "protocol metrics byte-identical" metrics1 metrics2;
  (* the scenario exercised the full event vocabulary worth checking *)
  let has sub =
    let n = String.length trace1 and m = String.length sub in
    let rec go i = i + m <= n && (String.sub trace1 i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has sends" true (has "\"ev\":\"send\"");
  Alcotest.(check bool) "has deliveries" true (has "\"ev\":\"deliver\"");
  Alcotest.(check bool) "has fault drops" true (has "\"cause\":\"fault_loss\"");
  Alcotest.(check bool) "has retransmits" true (has "\"ev\":\"retransmit\"");
  Alcotest.(check bool) "has quiesce" true (has "\"ev\":\"quiesce\"")

let test_instrumentation_is_transparent () =
  (* the same protocol seeds with and without a trace sink / shared
     registry must produce the same message totals: observability cannot
     perturb the run *)
  let build observed =
    let space =
      Bwc_metric.Space.of_dmatrix
        (Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create 60) ~n:20 ())
    in
    let metrics = if observed then Some (Registry.create ()) else None in
    let trace = if observed then Some (Trace.create ()) else None in
    let ens = Bwc_predtree.Ensemble.build ~rng:(Rng.create 61) ?metrics space in
    let classes = Bwc_core.Classes.make ~c:1000.0 [ 10.0; 20.0; 40.0 ] in
    let p =
      Bwc_core.Protocol.create ~rng:(Rng.create 62) ~n_cut:4 ?metrics ?trace
        ~classes ens
    in
    let rounds = Bwc_core.Protocol.run_aggregation p in
    (rounds, Bwc_core.Protocol.messages_sent p)
  in
  Alcotest.(check (pair int int))
    "identical rounds and messages" (build false) (build true)

(* ----- span timers ----- *)

(* ----- causal analytics ----- *)

module Causal = Bwc_obs.Causal
module Trace_diff = Bwc_obs.Trace_diff

(* two nodes, three messages: an aggregate answered by an ack (the
   critical path), a dropped heartbeat, and a query hop *)
let causal_fixture =
  [
    Trace.Round_start { round = 1 };
    Trace.Send
      { round = 1; msg = 0; kind = Trace.Aggregate; bytes = 100; lc = 1; src = 0; dst = 1 };
    Trace.Round_start { round = 2 };
    Trace.Deliver
      { round = 2; msg = 0; kind = Trace.Aggregate; bytes = 100; lc = 2; src = 0; dst = 1 };
    Trace.Send
      { round = 2; msg = 1; kind = Trace.Ack; bytes = 24; lc = 3; src = 1; dst = 0 };
    Trace.Send
      { round = 2; msg = 2; kind = Trace.Heartbeat; bytes = 8; lc = 4; src = 1; dst = 0 };
    Trace.Round_start { round = 3 };
    Trace.Deliver
      { round = 3; msg = 1; kind = Trace.Ack; bytes = 24; lc = 4; src = 1; dst = 0 };
    Trace.Drop
      {
        round = 3;
        msg = 2;
        kind = Trace.Heartbeat;
        bytes = 8;
        src = 1;
        dst = 0;
        cause = Trace.Fault_loss;
      };
    Trace.Query_hop { round = 3; msg = 3; bytes = 16; src = 0; dst = 1 };
    Trace.Quiesce { round = 3 };
  ]

let test_causal_report_golden () =
  let r = Causal.analyze causal_fixture in
  Alcotest.(check int) "messages" 3 r.Causal.messages;
  Alcotest.(check int) "engine sends exclude query hops" 3
    (Causal.engine_sends r);
  let expected_text =
    "trace analytics\n\
    \  rounds      : 3 (quiesce at 3)\n\
    \  messages    : 3 sends, 2 delivered, 1 dropped, 1 query hops\n\
    \  bytes       : 148\n\
     \n\
     critical path (2 hops, rounds 1..3, 66.7% of 3 rounds explained)\n\
    \   hop     msg  kind               link   sent  delivered  bytes\n\
    \     1       0  aggregate      0 ->    1      1         2    100\n\
    \     2       1  ack            1 ->    0      2         3     24\n\
     \n\
     byte budget by kind\n\
    \  kind          sends      bytes  delivered  dropped\n\
    \  heartbeat         1          8          0        1\n\
    \  aggregate         1        100          1        0\n\
    \  ack               1         24          1        0\n\
    \  query             1         16          1        0\n\
     \n\
     busiest links (top 10 by bytes)\n\
    \         link     msgs      bytes\n\
    \     0 ->    1        2        116\n\
    \     1 ->    0        2         32\n\
     \n\
     round waterfall (sends per round)\n\
    \     1 |#################### 1 sends, 100 bytes\n\
    \     2 |######################################## 2 sends, 32 bytes\n\
    \     3 |#################### 1 sends, 16 bytes\n"
  in
  Alcotest.(check string) "text golden" expected_text (Causal.to_text r);
  let json = Causal.to_json r in
  let json_prefix =
    "{\"rounds\":3,\"quiesce_round\":3,\"messages\":3,\"delivered\":2,\"dropped\":1,\"query_hops\":1,\"total_bytes\":148,\"critical_path\":{\"hops\":2,\"cp_rounds\":2,\"frac_explained\":0.6667,\"chain\":[{\"msg\":0,\"kind\":\"aggregate\",\"src\":0,\"dst\":1,\"send_round\":1,\"deliver_round\":2,\"bytes\":100},{\"msg\":1,\"kind\":\"ack\",\"src\":1,\"dst\":0,\"send_round\":2,\"deliver_round\":3,\"bytes\":24}]}"
  in
  Alcotest.(check string) "json golden prefix" json_prefix
    (String.sub json 0 (String.length json_prefix));
  (* the DAG itself: the ack's causal predecessor is the aggregate *)
  let dag = Causal.reconstruct causal_fixture in
  Alcotest.(check (list int)) "no unmatched delivers" []
    dag.Causal.unmatched_delivers;
  let m1 = List.nth dag.Causal.msgs 1 in
  Alcotest.(check (option int)) "ack pred" (Some 0) m1.Causal.m_pred;
  Alcotest.(check int) "ack chain" 2 m1.Causal.m_chain

let test_trace_diff () =
  let a = "{\"ev\":\"a\"}\n{\"ev\":\"b\"}\n{\"ev\":\"c\"}\n" in
  Alcotest.(check bool) "identical" true (Trace_diff.diff_strings a a = Trace_diff.Identical);
  (match Trace_diff.diff_strings a "{\"ev\":\"a\"}\n{\"ev\":\"X\"}\n{\"ev\":\"c\"}\n" with
  | Trace_diff.Diverges { line = 2; left = Some l; right = Some r } ->
      Alcotest.(check string) "left line" "{\"ev\":\"b\"}" l;
      Alcotest.(check string) "right line" "{\"ev\":\"X\"}" r
  | _ -> Alcotest.fail "expected divergence at line 2");
  (match Trace_diff.diff_strings a "{\"ev\":\"a\"}\n" with
  | Trace_diff.Diverges { line = 2; left = Some _; right = None } -> ()
  | _ -> Alcotest.fail "expected right side to end at line 2");
  (* a single trailing newline is not a line of its own *)
  Alcotest.(check bool) "trailing newline ignored" true
    (Trace_diff.diff_strings "x\n" "x" = Trace_diff.Identical);
  let rendered =
    Trace_diff.to_string ~left_name:"a.jsonl" ~right_name:"b.jsonl"
      (Trace_diff.Diverges { line = 7; left = Some "l"; right = None })
  in
  Alcotest.(check string) "rendering"
    "traces diverge at line 7\n  a.jsonl: l\n  b.jsonl: <ended at line 6>\n"
    rendered

let test_span () =
  let s = Span.create "work" in
  Alcotest.(check string) "name" "work" (Span.name s);
  let v = Span.time s (fun () -> 41 + 1) in
  Alcotest.(check int) "passes result through" 42 v;
  (try Span.time s (fun () -> raise Exit) with Exit -> ());
  Alcotest.(check int) "counts timings, also on exception" 2 (Span.count s);
  Alcotest.(check bool) "total >= max" true (Span.total_s s >= Span.max_s s);
  Alcotest.(check bool) "mean <= max" true (Span.mean_s s <= Span.max_s s);
  Span.reset s;
  Alcotest.(check int) "reset" 0 (Span.count s);
  Alcotest.(check (float 0.0)) "reset total" 0.0 (Span.total_s s)

let () =
  Alcotest.run "bwc_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "labels normalized" `Quick test_labels_normalized;
          Alcotest.test_case "type mismatch" `Quick test_type_mismatch;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "diff and reset" `Quick test_diff_and_reset;
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "text rendering" `Quick test_text_rendering;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order and jsonl" `Quick test_trace_order_and_jsonl;
          Alcotest.test_case "jsonl round-trip" `Quick test_trace_jsonl_round_trip;
          Alcotest.test_case "failure events jsonl" `Quick
            test_trace_failure_events_jsonl;
          Alcotest.test_case "ring capacity" `Quick test_trace_ring_capacity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "engine trace byte-identical" `Quick
            test_same_seed_identical_trace;
          Alcotest.test_case "protocol trace byte-identical" `Quick
            test_protocol_trace_deterministic;
          Alcotest.test_case "instrumentation transparent" `Quick
            test_instrumentation_is_transparent;
        ] );
      ( "causal",
        [
          Alcotest.test_case "report golden" `Quick test_causal_report_golden;
          Alcotest.test_case "trace diff" `Quick test_trace_diff;
        ] );
      ("span", [ Alcotest.test_case "span timing" `Quick test_span ]);
    ]
