(* Tests for bwc_experiments: workload generation, the report renderer,
   and small runs of every experiment driver asserting the paper's
   qualitative shapes (who wins, monotonicity, orderings). *)

module Rng = Bwc_stats.Rng
module Workload = Bwc_experiments.Workload

let small_dataset ~seed n =
  Bwc_dataset.Planetlab.generate ~rng:(Rng.create seed) ~name:"exp-ds"
    { Bwc_dataset.Planetlab.hp_target with n }

(* ----- Workload ----- *)

let test_workload_fixed_k () =
  let ds = small_dataset ~seed:1 30 in
  let range = Workload.bandwidth_range ds in
  let lo, hi = range in
  let qs = Workload.fixed_k ~rng:(Rng.create 2) ~range ~n:30 ~k:5 ~count:200 in
  Alcotest.(check int) "count" 200 (List.length qs);
  List.iter
    (fun (q : Workload.query) ->
      Alcotest.(check int) "k" 5 q.Workload.k;
      if q.Workload.b < lo || q.Workload.b >= hi then Alcotest.fail "b out of range";
      if q.Workload.at < 0 || q.Workload.at >= 30 then Alcotest.fail "at out of range")
    qs

let test_workload_swept_k () =
  let ds = small_dataset ~seed:3 20 in
  let range = Workload.bandwidth_range ds in
  let qs = Workload.swept_k ~rng:(Rng.create 4) ~range ~n:20 ~ks:[ 2; 5; 9 ] ~per_k:7 in
  Alcotest.(check int) "count" 21 (List.length qs);
  let count k = List.length (List.filter (fun q -> q.Workload.k = k) qs) in
  Alcotest.(check int) "per k" 7 (count 5)

let test_workload_k_fractions () =
  let ks = Workload.k_fraction_range ~n:100 ~lo:0.05 ~hi:0.30 ~steps:6 in
  Alcotest.(check (list int)) "values" [ 5; 10; 15; 20; 25; 30 ] ks;
  let tiny = Workload.k_fraction_range ~n:10 ~lo:0.01 ~hi:0.02 ~steps:3 in
  List.iter (fun k -> if k < 2 then Alcotest.fail "k must be >= 2") tiny

let test_bandwidth_range_percentiles () =
  let ds = small_dataset ~seed:5 40 in
  let lo, hi = Workload.bandwidth_range ds in
  let lo', hi' = Bwc_dataset.Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  Alcotest.(check (float 1e-9)) "lo" lo' lo;
  Alcotest.(check (float 1e-9)) "hi" hi' hi

(* ----- Report ----- *)

let test_report_renders () =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  Bwc_experiments.Report.table ~out ~title:"t" ~headers:[ "a"; "b" ]
    [ [ "1"; "2" ]; [ "30"; "40" ] ];
  Format.pp_print_flush out ();
  let s = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "has title" true (contains "t\n");
  Alcotest.(check bool) "has cells" true (contains "30" && contains "40");
  (* ragged rows are rejected *)
  Alcotest.(check bool) "ragged rejected" true
    (try
       Bwc_experiments.Report.table ~out ~title:"t" ~headers:[ "a" ] [ [ "1"; "2" ] ];
       false
     with Invalid_argument _ -> true)

(* ----- Experiment shapes ----- *)

let test_accuracy_shapes () =
  let ds = small_dataset ~seed:6 100 in
  let out = Bwc_experiments.Accuracy.run ~rounds:2 ~queries_per_round:200 ~seed:7 ds in
  Alcotest.(check bool) "has rows" true (List.length out.Bwc_experiments.Accuracy.rows >= 4);
  (* easy workload: everything returns *)
  Alcotest.(check bool) "tree central returns" true
    (out.Bwc_experiments.Accuracy.rr_tree_central > 0.95);
  Alcotest.(check bool) "decentral returns" true
    (out.Bwc_experiments.Accuracy.rr_tree_decentral > 0.9);
  (* WPR at the lowest constraint should not exceed the highest one by much:
     the paper's curves rise with b *)
  (match (List.hd out.rows, List.nth out.rows (List.length out.rows - 1)) with
  | first, last ->
      Alcotest.(check bool) "WPR rises for decentral" true
        (first.Bwc_experiments.Accuracy.wpr_tree_decentral
        <= last.Bwc_experiments.Accuracy.wpr_tree_decentral +. 0.05));
  (* pooled over the top third of constraints, the tree approaches do not
     lose to the euclidean model by a meaningful margin (at paper scale
     they win decisively; small runs carry sampling noise) *)
  let top = List.filteri (fun i _ -> i >= 2 * List.length out.rows / 3) out.rows in
  let avg f = List.fold_left (fun a r -> a +. f r) 0.0 top /. float_of_int (List.length top) in
  let tree = avg (fun r -> r.Bwc_experiments.Accuracy.wpr_tree_decentral) in
  let eucl = avg (fun r -> r.Bwc_experiments.Accuracy.wpr_eucl_central) in
  Alcotest.(check bool)
    (Printf.sprintf "tree (%.3f) <= eucl (%.3f) at high b" tree eucl)
    true (tree <= eucl +. 0.05)

let test_relerr_tree_beats_eucl () =
  let ds = small_dataset ~seed:8 70 in
  let out = Bwc_experiments.Relerr.run ~rounds:2 ~seed:9 ds in
  Alcotest.(check bool) "median gap positive" true
    (Bwc_experiments.Relerr.median_gap out > 0.0);
  (* the tree CDF dominates at several quantiles *)
  List.iter
    (fun p ->
      let t = Bwc_stats.Cdf.quantile out.Bwc_experiments.Relerr.tree p in
      let e = Bwc_stats.Cdf.quantile out.Bwc_experiments.Relerr.eucl p in
      if t > e +. 0.05 then Alcotest.failf "tree worse at p=%.2f (%.3f vs %.3f)" p t e)
    [ 0.5; 0.8; 0.9 ]

let test_tradeoff_shapes () =
  let ds = small_dataset ~seed:10 60 in
  let out = Bwc_experiments.Tradeoff.run ~rounds:2 ~per_k:4 ~seed:11 ds in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "decentral <= central at k=%d" r.Bwc_experiments.Tradeoff.k)
        true
        (r.Bwc_experiments.Tradeoff.rr_decentral
        <= r.Bwc_experiments.Tradeoff.rr_central +. 1e-9))
    out.Bwc_experiments.Tradeoff.rows;
  (* small k must be easy *)
  (match out.rows with
  | first :: _ -> Alcotest.(check (float 1e-9)) "k=2 trivially returns" 1.0
      first.Bwc_experiments.Tradeoff.rr_central
  | [] -> Alcotest.fail "rows expected")

let test_ncut_ablation_monotone () =
  let ds = small_dataset ~seed:12 50 in
  let rows =
    Bwc_experiments.Tradeoff.ncut_ablation ~rounds:1 ~per_k:3 ~n_cuts:[ 2; 10 ] ~seed:13 ds
  in
  match rows with
  | [ small; large ] ->
      Alcotest.(check bool) "bigger n_cut, better RR" true
        (small.Bwc_experiments.Tradeoff.a_rr
        <= large.Bwc_experiments.Tradeoff.a_rr +. 0.02)
  | _ -> Alcotest.fail "two rows expected"

let test_treeness_shapes () =
  let out =
    Bwc_experiments.Treeness.run ~n:60 ~sigmas:[ 0.05; 0.6 ] ~rounds:1
      ~queries_per_round:150 ~seed:14 ()
  in
  match out.Bwc_experiments.Treeness.curves with
  | [ good; bad ] ->
      Alcotest.(check bool) "epsilon ordering" true
        (good.Bwc_experiments.Treeness.epsilon_avg
        < bad.Bwc_experiments.Treeness.epsilon_avg);
      let pooled_wpr (c : Bwc_experiments.Treeness.curve) =
        let num, den =
          List.fold_left
            (fun (n, d) (b : Bwc_experiments.Treeness.bin) ->
              (n +. (b.Bwc_experiments.Treeness.wpr *. float_of_int b.queries),
               d + b.queries))
            (0.0, 0) c.Bwc_experiments.Treeness.bins
        in
        if den = 0 then 0.0 else num /. float_of_int den
      in
      Alcotest.(check bool) "worse treeness, worse WPR" true
        (pooled_wpr good < pooled_wpr bad +. 1e-9)
  | _ -> Alcotest.fail "two curves expected"

let test_scalability_shapes () =
  let base = small_dataset ~seed:15 90 in
  let out =
    Bwc_experiments.Scalability.run ~sizes:[ 30; 60; 90 ] ~subsets_per_size:1
      ~queries_per_subset:40 ~rounds:1 ~seed:16 base
  in
  Alcotest.(check int) "rows" 3 (List.length out.Bwc_experiments.Scalability.rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "hops small" true (r.Bwc_experiments.Scalability.avg_hops < 8.0);
      Alcotest.(check bool) "some queries return" true (r.Bwc_experiments.Scalability.rr > 0.3))
    out.rows

let test_embedding_ablation_shapes () =
  let ds = small_dataset ~seed:17 50 in
  let rows = Bwc_experiments.Embedding.run ~rounds:1 ~sizes:[ 1; 3 ] ~seed:18 ds in
  (* find the single-tree default and the 3-ensemble rows *)
  let find label = List.find (fun r -> r.Bwc_experiments.Embedding.label = label) rows in
  let single = find "random+anchor" and triple = find "random+anchor x3" in
  Alcotest.(check bool) "ensemble cuts the false-close tail" true
    (triple.Bwc_experiments.Embedding.over2x
    <= single.Bwc_experiments.Embedding.over2x +. 1e-9);
  List.iter
    (fun r ->
      Alcotest.(check bool) "measurement accounting sane" true
        (r.Bwc_experiments.Embedding.measurements > 0))
    rows

let test_oracle_shapes () =
  let ds = small_dataset ~seed:19 60 in
  let clean = Bwc_experiments.Oracle.run ~ks:[ 3; 6 ] ~queries_per_k:20 ~seed:20 ds in
  let noisy_ds =
    Bwc_dataset.Noise.multiplicative ~rng:(Rng.create 21) ~sigma:0.4 ds
  in
  let noisy = Bwc_experiments.Oracle.run ~ks:[ 3; 6 ] ~queries_per_k:20 ~seed:20 noisy_ds in
  let invalids out =
    List.fold_left (fun a r -> a + r.Bwc_experiments.Oracle.invalid) 0
      out.Bwc_experiments.Oracle.rows
  in
  Alcotest.(check bool) "epsilon ordering" true
    (clean.Bwc_experiments.Oracle.epsilon_avg < noisy.Bwc_experiments.Oracle.epsilon_avg);
  Alcotest.(check bool) "tree assumption degrades with noise" true
    (invalids clean <= invalids noisy);
  (* counters are internally consistent *)
  List.iter
    (fun r ->
      let open Bwc_experiments.Oracle in
      Alcotest.(check bool) "found bounded" true (r.alg1_found <= r.queries);
      Alcotest.(check bool) "invalid bounded" true (r.invalid <= r.alg1_found);
      Alcotest.(check bool) "missed bounded" true (r.missed <= r.oracle_feasible))
    (clean.Bwc_experiments.Oracle.rows @ noisy.Bwc_experiments.Oracle.rows)

let test_overhead_shapes () =
  let base = small_dataset ~seed:22 80 in
  let out = Bwc_experiments.Overhead.run ~sizes:[ 30; 60 ] ~repeats:1 ~seed:23 base in
  match out.Bwc_experiments.Overhead.rows with
  | [ small; large ] ->
      let open Bwc_experiments.Overhead in
      Alcotest.(check bool) "messages grow with n" true
        (small.messages_total < large.messages_total);
      (* the scalability claim: per-host message cost grows sublinearly
         (here: far less than the 2x of total size) *)
      Alcotest.(check bool) "per-host cost nearly flat" true
        (large.messages_per_host < 2.0 *. small.messages_per_host);
      Alcotest.(check bool) "quiescence reached" true
        (large.rounds_to_quiescence < 4 * 60)
  | _ -> Alcotest.fail "two rows expected"

let test_routing_shapes () =
  let ds = small_dataset ~seed:24 60 in
  let out = Bwc_experiments.Routing.run ~rounds:1 ~queries_per_k:30 ~seed:25 ds in
  List.iter
    (fun r ->
      let open Bwc_experiments.Routing in
      (* on converged tables both policies answer the same queries *)
      Alcotest.(check (float 1e-9)) "same RR" r.rr_best r.rr_first;
      Alcotest.(check bool) "hops sane" true (r.hops_best >= 0.0 && r.hops_first >= 0.0))
    out.Bwc_experiments.Routing.rows

let test_robustness_shapes () =
  let ds = small_dataset ~seed:28 40 in
  let out =
    Bwc_experiments.Robustness.run ~drops:[ 0.0; 0.2 ] ~crash_rates:[ 0.0; 0.15 ]
      ~queries:30 ~seed:29 ds
  in
  Alcotest.(check int) "rows" 4 (List.length out.Bwc_experiments.Robustness.rows);
  List.iter
    (fun r ->
      let open Bwc_experiments.Robustness in
      (* the acceptance property: every configuration converges to the
         identical fixed point as the fault-free run *)
      Alcotest.(check bool)
        (Printf.sprintf "converged at drop=%.1f crash=%.2f" r.drop r.crash_rate)
        true r.converged;
      Alcotest.(check bool)
        (Printf.sprintf "fixpoint match at drop=%.1f crash=%.2f" r.drop r.crash_rate)
        true r.fixpoint_match;
      Alcotest.(check bool) "reliability costs rounds" true (r.round_overhead >= 1.0);
      Alcotest.(check bool) "reliability costs messages" true
        (r.message_overhead >= 1.0);
      if r.drop > 0.0 then begin
        Alcotest.(check bool) "losses injected" true (r.lost > 0);
        Alcotest.(check bool) "losses recovered by retries" true (r.retries > 0)
      end)
    out.Bwc_experiments.Robustness.rows

let test_recovery_shapes () =
  let ds = small_dataset ~seed:30 32 in
  let out =
    Bwc_experiments.Robustness.recovery ~victim_counts:[ 1; 2 ] ~queries:30
      ~seed:31 ds
  in
  Alcotest.(check int) "rows" 2 (List.length out.Bwc_experiments.Robustness.rows);
  List.iter
    (fun r ->
      let open Bwc_experiments.Robustness in
      (* the acceptance properties: every crash is detected and healed,
         the repaired system agrees with full stabilization everywhere,
         and incremental repair re-propagates strictly less *)
      Alcotest.(check bool)
        (Printf.sprintf "healed with %d victims" r.victims)
        true r.healed;
      Alcotest.(check bool) "overlay match" true r.overlay_match;
      Alcotest.(check bool) "fixpoint match" true r.fixpoint_match;
      Alcotest.(check bool)
        (Printf.sprintf "repair cheaper (%d vs %d msgs)" r.repair_msgs
           r.full_msgs)
        true
        (r.repair_msgs < r.full_msgs);
      Alcotest.(check bool) "detection before reconvergence" true
        (0 < r.detect_rounds && r.detect_rounds <= r.reconverge_rounds);
      Alcotest.(check bool) "suspicions preceded repairs" true
        (r.suspects >= r.victims);
      Alcotest.(check bool) "rr sane" true
        (0.0 <= r.rr_during && r.rr_during <= 1.0 && 0.0 <= r.rr_after
       && r.rr_after <= 1.0))
    out.Bwc_experiments.Robustness.rows

let test_trace_analytics_shapes () =
  let ds = small_dataset ~seed:32 32 in
  let out = Bwc_experiments.Trace_analytics.run ~victims:2 ~queries:20 ~seed:33 ds in
  let open Bwc_experiments.Trace_analytics in
  Alcotest.(check (list string))
    "scenarios" [ "clean"; "faulty"; "recovery" ]
    (List.map (fun r -> r.scenario) out.rows);
  List.iter
    (fun r ->
      (* the acceptance invariant: per-kind attribution sums exactly to
         the engine's send counter (query hops excluded on both sides) *)
      Alcotest.(check bool) (r.scenario ^ ": exact sum") true r.send_sum_matches;
      let non_query =
        List.fold_left
          (fun acc k -> if k.kind = "query" then acc else acc + k.sends)
          0 r.kinds
      in
      Alcotest.(check int) (r.scenario ^ ": kinds sum to messages") r.messages
        non_query;
      Alcotest.(check bool)
        (r.scenario ^ ": frac in [0,1]")
        true
        (0.0 <= r.frac_explained && r.frac_explained <= 1.0);
      Alcotest.(check bool) (r.scenario ^ ": critical path") true (r.cp_len > 0))
    out.rows;
  let find s = List.find (fun r -> r.scenario = s) out.rows in
  let kind r name = List.find (fun k -> k.kind = name) r.kinds in
  Alcotest.(check int) "clean run loses nothing" 0 (find "clean").dropped;
  Alcotest.(check bool) "faults drop traffic" true ((find "faulty").dropped > 0);
  Alcotest.(check bool) "drops force retransmits" true
    ((kind (find "faulty") "retransmit").sends > 0);
  Alcotest.(check bool) "detector heartbeats" true
    ((kind (find "recovery") "heartbeat").sends > 0);
  (* healing re-propagation is tagged repair (root-path/relink) or
     invalidate (ex-neighbor purge) depending on which repair path the
     overlay needed; either way the class must show up in attribution *)
  Alcotest.(check bool) "crash repairs traced" true
    ((kind (find "recovery") "repair").sends
       + (kind (find "recovery") "invalidate").sends
    > 0)

let test_recovery_critical_path () =
  (* the seeded E13-style recovery scenario behind `bwcluster analyze`:
     the witness chain is deterministic, so its kind sequence is a
     stable fact of the trace — aggregation converges (aggregate/ack
     chains), then detector heartbeats carry causality until the repair
     re-propagation closes the path *)
  let ds = small_dataset ~seed:32 32 in
  let events, engine_sends =
    Bwc_experiments.Trace_analytics.recovery_events ~victims:1 ~queries:20
      ~seed:33 ds
  in
  let report = Bwc_obs.Causal.analyze events in
  Alcotest.(check int) "send events 1:1 with engine sends" engine_sends
    (Bwc_obs.Causal.engine_sends report);
  let chain =
    List.map
      (fun (h : Bwc_obs.Causal.hop) -> Bwc_obs.Trace.kind_to_string h.h_kind)
      report.Bwc_obs.Causal.critical_path
  in
  Alcotest.(check (list string))
    "witness chain kinds"
    [
      "aggregate"; "ack"; "ack"; "ack"; "ack"; "ack"; "heartbeat"; "heartbeat";
      "heartbeat"; "heartbeat"; "heartbeat"; "heartbeat"; "heartbeat";
      "heartbeat"; "heartbeat"; "heartbeat"; "heartbeat"; "heartbeat";
      "heartbeat";
    ]
    chain;
  (* byte-identical rerun: same seed, same events, same report *)
  let events', _ =
    Bwc_experiments.Trace_analytics.recovery_events ~victims:1 ~queries:20
      ~seed:33 ds
  in
  Alcotest.(check string) "deterministic report"
    (Bwc_obs.Causal.to_json report)
    (Bwc_obs.Causal.to_json (Bwc_obs.Causal.analyze events'))

let test_csv_export () =
  let ds = small_dataset ~seed:26 50 in
  let out = Bwc_experiments.Tradeoff.run ~rounds:1 ~per_k:2 ~seed:27 ds in
  let path = Filename.temp_file "bwc" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bwc_experiments.Tradeoff.save_csv out path;
      let ic = open_in path in
      let header = input_line ic in
      let lines = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check string) "header" "k,rr_central,rr_decentral,queries" header;
      Alcotest.(check int) "row count" (List.length out.Bwc_experiments.Tradeoff.rows) !lines)

let () =
  Alcotest.run "bwc_experiments"
    [
      ( "workload",
        [
          Alcotest.test_case "fixed k" `Quick test_workload_fixed_k;
          Alcotest.test_case "swept k" `Quick test_workload_swept_k;
          Alcotest.test_case "k fractions" `Quick test_workload_k_fractions;
          Alcotest.test_case "bandwidth range" `Quick test_bandwidth_range_percentiles;
        ] );
      ("report", [ Alcotest.test_case "renders" `Quick test_report_renders ]);
      ( "shapes",
        [
          Alcotest.test_case "accuracy (Fig.3)" `Slow test_accuracy_shapes;
          Alcotest.test_case "relative error (Fig.3)" `Slow test_relerr_tree_beats_eucl;
          Alcotest.test_case "tradeoff (Fig.4)" `Slow test_tradeoff_shapes;
          Alcotest.test_case "n_cut ablation (E7)" `Slow test_ncut_ablation_monotone;
          Alcotest.test_case "treeness (Fig.5)" `Slow test_treeness_shapes;
          Alcotest.test_case "scalability (Fig.6)" `Slow test_scalability_shapes;
          Alcotest.test_case "embedding ablation (E8)" `Slow
            test_embedding_ablation_shapes;
          Alcotest.test_case "oracle ablation (E9)" `Slow test_oracle_shapes;
          Alcotest.test_case "overhead (E10)" `Slow test_overhead_shapes;
          Alcotest.test_case "routing policy (E11)" `Slow test_routing_shapes;
          Alcotest.test_case "robustness (E12)" `Slow test_robustness_shapes;
          Alcotest.test_case "crash recovery (E13)" `Slow test_recovery_shapes;
          Alcotest.test_case "trace analytics (E16)" `Slow
            test_trace_analytics_shapes;
          Alcotest.test_case "recovery critical path (E16)" `Slow
            test_recovery_critical_path;
          Alcotest.test_case "csv export" `Quick test_csv_export;
        ] );
    ]
