(* Tests for bwc_stats: PRNG determinism and distribution sanity, summary
   statistics against hand-computed values, empirical CDFs, histograms,
   and the online Welford accumulator against the batch formulas. *)

module Rng = Bwc_stats.Rng
module Summary = Bwc_stats.Summary
module Cdf = Bwc_stats.Cdf
module Histogram = Bwc_stats.Histogram
module Welford = Bwc_stats.Welford

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ----- Rng ----- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 2)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  (* Drawing from the parent must not affect the child's stream. *)
  let child_copy = Rng.copy child in
  let _ = Rng.bits64 parent in
  Alcotest.(check int64) "child unaffected" (Rng.bits64 child_copy) (Rng.bits64 child)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_rng_int_uniform () =
  let rng = Rng.create 5 in
  let counts = Array.make 8 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = draws / 8 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expected)
    counts

let test_rng_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of bounds: %f" v
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let mean = Summary.mean xs and sd = Summary.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "sd near 1" true (Float.abs (sd -. 1.0) < 0.02)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_permutation () =
  let rng = Rng.create 19 in
  let p = Rng.permutation rng 100 in
  let seen = Array.make 100 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "bijection" true (Array.for_all Fun.id seen)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 23 in
  for _ = 1 to 200 do
    let s = Rng.sample_without_replacement rng 5 100 in
    Alcotest.(check int) "size" 5 (Array.length s);
    let tbl = Hashtbl.create 5 in
    Array.iter
      (fun v ->
        if v < 0 || v >= 100 then Alcotest.failf "out of range: %d" v;
        if Hashtbl.mem tbl v then Alcotest.fail "duplicate draw";
        Hashtbl.add tbl v ())
      s
  done

let test_rng_sample_covers () =
  (* sampling m close to n must still be duplicate-free and in range *)
  let rng = Rng.create 29 in
  let s = Rng.sample_without_replacement rng 99 100 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Array.iteri (fun i v -> if i > 0 && sorted.(i - 1) = v then Alcotest.fail "dup") sorted

let test_log_normal_positive () =
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    if Rng.log_normal rng ~mu:2.0 ~sigma:1.0 <= 0.0 then Alcotest.fail "non-positive"
  done

let test_exponential_mean () =
  let rng = Rng.create 47 in
  let xs = Array.init 40_000 (fun _ -> Rng.exponential rng ~rate:2.0) in
  let mean = Summary.mean xs in
  Alcotest.(check bool) "mean ~ 1/rate" true (Float.abs (mean -. 0.5) < 0.02);
  Array.iter (fun x -> if x < 0.0 then Alcotest.fail "negative draw") xs

(* ----- Summary ----- *)

let test_summary_mean () = check_float "mean" 2.5 (Summary.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_summary_variance () =
  (* var of 2,4,4,4,5,5,7,9 = 32/7 (unbiased) *)
  check_float "variance" (32.0 /. 7.0)
    (Summary.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_summary_percentile_interp () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_float "p0" 10.0 (Summary.percentile xs 0.0);
  check_float "p100" 40.0 (Summary.percentile xs 100.0);
  check_float "p50" 25.0 (Summary.percentile xs 50.0);
  (* rank = 1/3 between 20 and 30 at p = 100/3+... rank=0.75*3=2.25 -> 32.5 *)
  check_float "p75" 32.5 (Summary.percentile xs 75.0)

let test_summary_single () =
  check_float "singleton percentile" 5.0 (Summary.percentile [| 5.0 |] 73.0)

let test_summary_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary: empty sample") (fun () ->
      ignore (Summary.mean [||]))

let test_summary_digest () =
  match Summary.of_array [| 1.0; 2.0; 3.0 |] with
  | None -> Alcotest.fail "expected digest"
  | Some d ->
      Alcotest.(check int) "count" 3 d.Summary.count;
      check_float "min" 1.0 d.Summary.min;
      check_float "max" 3.0 d.Summary.max

(* ----- Cdf ----- *)

let test_cdf_eval () =
  let cdf = Cdf.make [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "below" 0.0 (Cdf.eval cdf 0.5);
  check_float "at 2" 0.4 (Cdf.eval cdf 2.0);
  check_float "mid" 0.4 (Cdf.eval cdf 2.5);
  check_float "top" 1.0 (Cdf.eval cdf 5.0);
  check_float "above" 1.0 (Cdf.eval cdf 99.0)

let test_cdf_quantile () =
  let cdf = Cdf.make [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "q0.2" 1.0 (Cdf.quantile cdf 0.2);
  check_float "q0.21" 2.0 (Cdf.quantile cdf 0.21);
  check_float "q1" 5.0 (Cdf.quantile cdf 1.0);
  check_float "q0" 1.0 (Cdf.quantile cdf 0.0)

let test_cdf_fraction_in () =
  let cdf = Cdf.make [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "middle band" 0.6 (Cdf.fraction_in cdf ~lo:2.0 ~hi:4.0);
  check_float "empty band" 0.0 (Cdf.fraction_in cdf ~lo:5.5 ~hi:9.0);
  check_float "inverted" 0.0 (Cdf.fraction_in cdf ~lo:4.0 ~hi:2.0)

let test_cdf_quantile_eval_inverse () =
  (* quantile is the generalised inverse of eval *)
  let rng = Rng.create 37 in
  let xs = Array.init 200 (fun _ -> Rng.float rng 100.0) in
  let cdf = Cdf.make xs in
  List.iter
    (fun p ->
      let v = Cdf.quantile cdf p in
      if Cdf.eval cdf v < p -. 1e-9 then Alcotest.failf "eval(quantile %f) too small" p)
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

(* ----- Histogram ----- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Histogram.add_all h [| 0.5; 1.0; 3.0; 9.9; 100.0; -5.0 |];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "first bin (clamped -5, 0.5, 1.0)" 3 (Histogram.bin_count h 0);
  Alcotest.(check int) "last bin (9.9, clamped 100)" 2 (Histogram.bin_count h 4);
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin lo" 2.0 lo;
  check_float "bin hi" 4.0 hi

let test_histogram_normalized () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h 0.25;
  Histogram.add h 0.75;
  Histogram.add h 0.8;
  let fracs = Histogram.normalized h in
  check_float "low" (1.0 /. 3.0) fracs.(0);
  check_float "high" (2.0 /. 3.0) fracs.(1)

(* ----- Welford ----- *)

let test_welford_matches_batch () =
  let rng = Rng.create 41 in
  let xs = Array.init 500 (fun _ -> Rng.float rng 10.0) in
  let w = Welford.create () in
  Array.iter (Welford.add w) xs;
  check_float ~eps:1e-9 "mean" (Summary.mean xs) (Welford.mean w);
  check_float ~eps:1e-9 "variance" (Summary.variance xs) (Welford.variance w)

let test_welford_merge () =
  let rng = Rng.create 43 in
  let xs = Array.init 300 (fun _ -> Rng.float rng 5.0) in
  let a = Welford.create () and b = Welford.create () in
  Array.iteri (fun i x -> Welford.add (if i < 120 then a else b) x) xs;
  let m = Welford.merge a b in
  check_float ~eps:1e-9 "merged mean" (Summary.mean xs) (Welford.mean m);
  check_float ~eps:1e-9 "merged var" (Summary.variance xs) (Welford.variance m)

(* ----- qcheck properties ----- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"percentile monotone in p" ~count:200
      (pair (array_of_size (Gen.int_range 2 50) (float_range 0.0 1000.0))
         (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
      (fun (xs, (p1, p2)) ->
        let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
        Summary.percentile xs lo <= Summary.percentile xs hi +. 1e-9);
    Test.make ~name:"cdf eval in [0,1] and monotone" ~count:200
      (pair (array_of_size (Gen.int_range 1 60) (float_range (-100.0) 100.0))
         (pair (float_range (-200.0) 200.0) (float_range (-200.0) 200.0)))
      (fun (xs, (x1, x2)) ->
        let cdf = Cdf.make xs in
        let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
        let a = Cdf.eval cdf lo and b = Cdf.eval cdf hi in
        0.0 <= a && a <= b && b <= 1.0);
    Test.make ~name:"welford equals batch" ~count:100
      (array_of_size (Gen.int_range 2 100) (float_range (-50.0) 50.0))
      (fun xs ->
        let w = Welford.create () in
        Array.iter (Welford.add w) xs;
        Float.abs (Welford.mean w -. Summary.mean xs) < 1e-6
        && Float.abs (Welford.variance w -. Summary.variance xs) < 1e-6);
  ]

let () =
  Alcotest.run "bwc_stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_rng_int_uniform;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "permutation bijective" `Quick test_rng_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "sample near-full" `Quick test_rng_sample_covers;
          Alcotest.test_case "log-normal positive" `Quick test_log_normal_positive;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        ] );
      ( "summary",
        [
          Alcotest.test_case "mean" `Quick test_summary_mean;
          Alcotest.test_case "variance" `Quick test_summary_variance;
          Alcotest.test_case "percentile interpolation" `Quick
            test_summary_percentile_interp;
          Alcotest.test_case "singleton" `Quick test_summary_single;
          Alcotest.test_case "empty raises" `Quick test_summary_empty;
          Alcotest.test_case "digest" `Quick test_summary_digest;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantile" `Quick test_cdf_quantile;
          Alcotest.test_case "fraction_in" `Quick test_cdf_fraction_in;
          Alcotest.test_case "quantile inverts eval" `Quick test_cdf_quantile_eval_inverse;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning and clamping" `Quick test_histogram_basic;
          Alcotest.test_case "normalized" `Quick test_histogram_normalized;
        ] );
      ( "welford",
        [
          Alcotest.test_case "matches batch" `Quick test_welford_matches_batch;
          Alcotest.test_case "merge" `Quick test_welford_merge;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
