(* Tests for bwc_euclid: Hopcroft-Karp matching and König MIS extraction
   (checked against brute force), and the adapted k-diameter clustering
   on hand-built and random point sets. *)

module Rng = Bwc_stats.Rng
module Bipartite = Bwc_euclid.Bipartite
module Kdiam = Bwc_euclid.Kdiam
module Coord = Bwc_vivaldi.Coord

let pt x y = { Coord.x; y }

(* ----- Bipartite ----- *)

let test_matching_path_graph () =
  (* L0-R0, L0-R1, L1-R1: max matching 2 *)
  let g = Bipartite.create ~left:2 ~right:2 in
  Bipartite.add_edge g 0 0;
  Bipartite.add_edge g 0 1;
  Bipartite.add_edge g 1 1;
  Alcotest.(check int) "matching" 2 (Bipartite.max_matching g)

let test_matching_star () =
  (* one left vertex connected to many rights: matching 1 *)
  let g = Bipartite.create ~left:1 ~right:5 in
  for v = 0 to 4 do
    Bipartite.add_edge g 0 v
  done;
  Alcotest.(check int) "matching" 1 (Bipartite.max_matching g)

let test_matching_empty () =
  let g = Bipartite.create ~left:3 ~right:4 in
  Alcotest.(check int) "no edges" 0 (Bipartite.max_matching g)

let test_matching_complete () =
  let g = Bipartite.create ~left:3 ~right:3 in
  for u = 0 to 2 do
    for v = 0 to 2 do
      Bipartite.add_edge g u v
    done
  done;
  Alcotest.(check int) "perfect" 3 (Bipartite.max_matching g)

(* no conflict edge may connect two chosen vertices *)
let mis_is_independent (in_l, in_r) edges =
  List.for_all (fun (u, v) -> not (in_l.(u) && in_r.(v))) edges

let test_mis_konig_size () =
  let g = Bipartite.create ~left:3 ~right:3 in
  let edges = [ (0, 0); (0, 1); (1, 1); (2, 2) ] in
  List.iter (fun (u, v) -> Bipartite.add_edge g u v) edges;
  let matching = Bipartite.max_matching g in
  let in_l, in_r = Bipartite.max_independent_set g in
  let size =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_l
    + Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_r
  in
  Alcotest.(check int) "König size" (6 - matching) size;
  Alcotest.(check bool) "independent" true (mis_is_independent (in_l, in_r) edges)

(* brute force MIS on tiny bipartite graphs *)
let brute_mis ~left ~right edges =
  let best = ref 0 in
  for mask_l = 0 to (1 lsl left) - 1 do
    for mask_r = 0 to (1 lsl right) - 1 do
      let ok =
        List.for_all
          (fun (u, v) -> not (mask_l land (1 lsl u) <> 0 && mask_r land (1 lsl v) <> 0))
          edges
      in
      if ok then begin
        let count m =
          let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
          loop m 0
        in
        best := Stdlib.max !best (count mask_l + count mask_r)
      end
    done
  done;
  !best

let test_mis_random_vs_brute () =
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let left = 1 + Rng.int rng 5 and right = 1 + Rng.int rng 5 in
    let g = Bipartite.create ~left ~right in
    let edges = ref [] in
    for u = 0 to left - 1 do
      for v = 0 to right - 1 do
        if Rng.float rng 1.0 < 0.4 then begin
          Bipartite.add_edge g u v;
          edges := (u, v) :: !edges
        end
      done
    done;
    let in_l, in_r = Bipartite.max_independent_set g in
    let size =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_l
      + Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_r
    in
    let want = brute_mis ~left ~right !edges in
    if size <> want then Alcotest.failf "MIS %d, brute force %d" size want;
    if not (mis_is_independent (in_l, in_r) !edges) then Alcotest.fail "not independent"
  done

(* ----- Kdiam ----- *)

let test_kdiam_two_tight_groups () =
  (* two groups of 3, far apart: k=3 succeeds with small l, k=4 needs the
     group diameter to stretch across and fails *)
  let points =
    [|
      pt 0.0 0.0; pt 0.1 0.0; pt 0.0 0.1;
      pt 10.0 0.0; pt 10.1 0.0; pt 10.0 0.1;
    |]
  in
  (match Kdiam.find_cluster ~points ~k:3 ~l:0.3 with
  | Some c -> Alcotest.(check int) "size" 3 (List.length c)
  | None -> Alcotest.fail "tight triple exists");
  Alcotest.(check bool) "k=4 infeasible at small l" true
    (Kdiam.find_cluster ~points ~k:4 ~l:0.3 = None);
  match Kdiam.find_cluster ~points ~k:6 ~l:20.0 with
  | Some c -> Alcotest.(check int) "all six" 6 (List.length c)
  | None -> Alcotest.fail "whole set fits at l=20"

let test_kdiam_cluster_diameter_property () =
  let rng = Rng.create 12 in
  for _ = 1 to 40 do
    let n = 8 + Rng.int rng 20 in
    let points = Array.init n (fun _ -> pt (Rng.float rng 10.0) (Rng.float rng 10.0)) in
    let l = 1.0 +. Rng.float rng 5.0 in
    let k = 2 + Rng.int rng 5 in
    match Kdiam.find_cluster ~points ~k ~l with
    | None -> ()
    | Some cluster ->
        Alcotest.(check int) "size" k (List.length cluster);
        List.iteri
          (fun i x ->
            List.iteri
              (fun j y ->
                if j > i && Coord.dist points.(x) points.(y) > l *. (1.0 +. 1e-9) then
                  Alcotest.fail "diameter violated")
              cluster)
          cluster
  done

(* brute force: does a k-subset with diameter <= l exist? *)
let brute_exists points k l =
  let n = Array.length points in
  let rec choose start acc count =
    if count = k then begin
      let ok = ref true in
      List.iteri
        (fun i x ->
          List.iteri
            (fun j y -> if j > i && Coord.dist points.(x) points.(y) > l then ok := false)
            acc)
        acc;
      !ok
    end
    else if start >= n then false
    else choose (start + 1) (start :: acc) (count + 1) || choose (start + 1) acc count
  in
  choose 0 [] 0

let test_kdiam_vs_brute_force () =
  let rng = Rng.create 13 in
  for _ = 1 to 30 do
    let n = 6 + Rng.int rng 6 in
    let points = Array.init n (fun _ -> pt (Rng.float rng 4.0) (Rng.float rng 4.0)) in
    let l = 0.5 +. Rng.float rng 3.0 in
    let k = 2 + Rng.int rng 3 in
    let found = Kdiam.find_cluster ~points ~k ~l <> None in
    let expected = brute_exists points k l in
    if found <> expected then
      Alcotest.failf "kdiam %b, brute force %b (n=%d k=%d l=%.2f)" found expected n k l
  done

let test_kdiam_max_size_vs_brute () =
  let rng = Rng.create 14 in
  for _ = 1 to 20 do
    let n = 5 + Rng.int rng 5 in
    let points = Array.init n (fun _ -> pt (Rng.float rng 3.0) (Rng.float rng 3.0)) in
    let l = 0.5 +. Rng.float rng 2.0 in
    let rec largest k = if k < 2 then 1 else if brute_exists points k l then k else largest (k - 1) in
    let expected = largest n in
    let got = Kdiam.max_cluster_size ~points ~l in
    if got <> expected then Alcotest.failf "max size %d, brute %d" got expected
  done

let test_kdiam_lens_members () =
  let points = [| pt 0.0 0.0; pt 2.0 0.0; pt 1.0 0.5; pt 1.0 5.0 |] in
  let lens = Kdiam.lens_members ~points ~p:0 ~q:1 in
  Alcotest.(check (list int)) "p, q and the near point" [ 0; 1; 2 ] lens

let test_kdiam_index_agrees () =
  let rng = Rng.create 15 in
  let points = Array.init 25 (fun _ -> pt (Rng.float rng 8.0) (Rng.float rng 8.0)) in
  let index = Kdiam.Index.build points in
  List.iter
    (fun (k, l) ->
      let direct = Kdiam.find_cluster ~points ~k ~l in
      let via_index = Kdiam.Index.find index ~k ~l in
      Alcotest.(check bool) "same feasibility" (direct <> None) (via_index <> None);
      Alcotest.(check int) "same max size"
        (Kdiam.max_cluster_size ~points ~l)
        (Kdiam.Index.max_size index ~l))
    [ (3, 1.0); (5, 2.0); (8, 4.0); (12, 12.0) ]

let test_kdiam_pair_query () =
  (* k = 2 reduces to "any pair within l" *)
  let points = [| pt 0.0 0.0; pt 3.0 0.0; pt 10.0 0.0 |] in
  (match Kdiam.find_cluster ~points ~k:2 ~l:3.5 with
  | Some [ a; b ] -> Alcotest.(check bool) "close pair" true
      (Coord.dist points.(a) points.(b) <= 3.5)
  | Some _ | None -> Alcotest.fail "pair (0,1) qualifies");
  Alcotest.(check bool) "no pair within 1" true (Kdiam.find_cluster ~points ~k:2 ~l:1.0 = None)

let test_kdiam_max_size_monotone_in_l () =
  let rng = Rng.create 16 in
  let points = Array.init 20 (fun _ -> pt (Rng.float rng 5.0) (Rng.float rng 5.0)) in
  let sizes = List.map (fun l -> Kdiam.max_cluster_size ~points ~l) [ 0.5; 1.0; 2.0; 4.0; 10.0 ] in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (mono sizes);
  Alcotest.(check int) "everything at huge l" 20
    (Kdiam.max_cluster_size ~points ~l:100.0)

let test_matching_chain () =
  (* chain L0-R0-L1-R1-...: perfect matching exists *)
  let m = 6 in
  let g = Bipartite.create ~left:m ~right:m in
  for i = 0 to m - 1 do
    Bipartite.add_edge g i i;
    if i + 1 < m then Bipartite.add_edge g (i + 1) i
  done;
  Alcotest.(check int) "perfect chain matching" m (Bipartite.max_matching g)

let () =
  Alcotest.run "bwc_euclid"
    [
      ( "bipartite",
        [
          Alcotest.test_case "path graph" `Quick test_matching_path_graph;
          Alcotest.test_case "star" `Quick test_matching_star;
          Alcotest.test_case "empty" `Quick test_matching_empty;
          Alcotest.test_case "complete" `Quick test_matching_complete;
          Alcotest.test_case "König MIS size" `Quick test_mis_konig_size;
          Alcotest.test_case "MIS vs brute force" `Quick test_mis_random_vs_brute;
          Alcotest.test_case "chain matching" `Quick test_matching_chain;
        ] );
      ( "kdiam",
        [
          Alcotest.test_case "two tight groups" `Quick test_kdiam_two_tight_groups;
          Alcotest.test_case "diameter property" `Quick
            test_kdiam_cluster_diameter_property;
          Alcotest.test_case "feasibility vs brute force" `Quick test_kdiam_vs_brute_force;
          Alcotest.test_case "max size vs brute force" `Quick test_kdiam_max_size_vs_brute;
          Alcotest.test_case "lens members" `Quick test_kdiam_lens_members;
          Alcotest.test_case "index agrees with direct" `Quick test_kdiam_index_agrees;
          Alcotest.test_case "pair query" `Quick test_kdiam_pair_query;
          Alcotest.test_case "max size monotone in l" `Quick
            test_kdiam_max_size_monotone_in_l;
        ] );
    ]
