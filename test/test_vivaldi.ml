(* Tests for bwc_vivaldi: coordinate arithmetic and the convergence of the
   embedding on metrics that 2-d Euclidean space can and cannot fit. *)

module Rng = Bwc_stats.Rng
module Coord = Bwc_vivaldi.Coord
module Vivaldi = Bwc_vivaldi.Vivaldi
module Space = Bwc_metric.Space

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

(* ----- Coord ----- *)

let test_coord_arith () =
  let a = { Coord.x = 1.0; y = 2.0 } and b = { Coord.x = 4.0; y = 6.0 } in
  Alcotest.(check (float 1e-9)) "dist" 5.0 (Coord.dist a b);
  let s = Coord.add a (Coord.scale 2.0 b) in
  Alcotest.(check (float 1e-9)) "add/scale x" 9.0 s.Coord.x;
  Alcotest.(check (float 1e-9)) "add/scale y" 14.0 s.Coord.y;
  Alcotest.(check (float 1e-9)) "norm" 5.0 (Coord.norm (Coord.sub b a))

let test_coord_unit_towards () =
  let rng = Rng.create 1 in
  let from = { Coord.x = 0.0; y = 0.0 } and towards = { Coord.x = 3.0; y = 4.0 } in
  let u = Coord.unit_towards ~from ~towards ~rng in
  Alcotest.(check (float 1e-9)) "unit norm" 1.0 (Coord.norm u);
  Alcotest.(check (float 1e-9)) "direction x" 0.6 u.Coord.x;
  (* coincident points give a random but unit-length direction *)
  let r = Coord.unit_towards ~from ~towards:from ~rng in
  Alcotest.(check (float 1e-6)) "random unit" 1.0 (Coord.norm r)

(* ----- Vivaldi ----- *)

(* A metric that 2-d Euclidean space represents exactly: points on a grid. *)
let grid_space n =
  let side = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let coord i = (float_of_int (i mod side), float_of_int (i / side)) in
  Space.make ~n ~dist:(fun i j ->
      let xi, yi = coord i and xj, yj = coord j in
      sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)))

let test_vivaldi_fits_euclidean_input () =
  let space = grid_space 25 in
  let t =
    Vivaldi.embed ~rng:(Rng.create 2)
      ~params:{ Vivaldi.default_params with rounds = 400 }
      space
  in
  let err = Vivaldi.mean_fit_error t space in
  if err > 0.08 then Alcotest.failf "grid should embed well, got mean error %.3f" err

let test_vivaldi_error_decreases_with_rounds () =
  let space = grid_space 16 in
  let err rounds =
    let t =
      Vivaldi.embed ~rng:(Rng.create 3) ~params:{ Vivaldi.default_params with rounds } space
    in
    Vivaldi.mean_fit_error t space
  in
  Alcotest.(check bool) "more rounds help" true (err 200 < err 3)

let test_vivaldi_star_metric_has_residual_error () =
  (* a deep star (tree) metric does not fit the plane: Vivaldi must retain
     substantially more error than on the grid *)
  let weights = Array.init 20 (fun i -> 1.0 +. float_of_int (i mod 7)) in
  let star =
    Space.make ~n:20 ~dist:(fun i j -> if i = j then 0.0 else weights.(i) +. weights.(j))
  in
  let t =
    Vivaldi.embed ~rng:(Rng.create 4)
      ~params:{ Vivaldi.default_params with rounds = 300 }
      star
  in
  Alcotest.(check bool)
    "tree metrics resist planar embedding" true
    (Vivaldi.mean_fit_error t star > 0.05)

let test_vivaldi_deterministic () =
  let space = grid_space 9 in
  let a = Vivaldi.embed ~rng:(Rng.create 5) space in
  let b = Vivaldi.embed ~rng:(Rng.create 5) space in
  let ca = Vivaldi.coords a and cb = Vivaldi.coords b in
  Array.iteri
    (fun i p ->
      if not (feq p.Coord.x cb.(i).Coord.x && feq p.Coord.y cb.(i).Coord.y) then
        Alcotest.fail "same seed must give same embedding")
    ca

let test_vivaldi_predicted_properties () =
  let space = grid_space 12 in
  let t = Vivaldi.embed ~rng:(Rng.create 6) space in
  Alcotest.(check (float 1e-9)) "diagonal" 0.0 (Vivaldi.predicted t 3 3);
  Alcotest.(check bool) "symmetry" true
    (feq (Vivaldi.predicted t 1 7) (Vivaldi.predicted t 7 1));
  Alcotest.(check bool) "self bandwidth infinite" true
    (Float.equal (Vivaldi.predicted_bw t 2 2) Float.infinity)

let test_vivaldi_relative_errors_shape () =
  let space = grid_space 10 in
  let t = Vivaldi.embed ~rng:(Rng.create 7) space in
  let errs = Vivaldi.relative_errors t space in
  Alcotest.(check int) "pair count" (10 * 9 / 2) (Array.length errs);
  Array.iter (fun e -> if e < 0.0 then Alcotest.fail "negative error") errs

let test_vivaldi_coords_finite () =
  (* embedding a noisy (triangle-violating) input must not blow up *)
  let rng = Rng.create 8 in
  let ds =
    Bwc_dataset.Noise.multiplicative ~rng ~sigma:0.5
      (Bwc_dataset.Hier_tree.generate ~rng ~n:30 ~name:"noisy" ())
  in
  let t = Vivaldi.embed ~rng:(Rng.create 9) (Bwc_dataset.Dataset.metric ds) in
  Array.iter
    (fun c ->
      if not (Float.is_finite c.Coord.x && Float.is_finite c.Coord.y) then
        Alcotest.fail "non-finite coordinate")
    (Vivaldi.coords t)

let test_vivaldi_single_node () =
  let space = Space.make ~n:1 ~dist:(fun _ _ -> 0.0) in
  let t = Vivaldi.embed ~rng:(Rng.create 10) space in
  Alcotest.(check int) "one coordinate" 1 (Array.length (Vivaldi.coords t))

let () =
  Alcotest.run "bwc_vivaldi"
    [
      ( "coord",
        [
          Alcotest.test_case "arithmetic" `Quick test_coord_arith;
          Alcotest.test_case "unit towards" `Quick test_coord_unit_towards;
        ] );
      ( "vivaldi",
        [
          Alcotest.test_case "fits Euclidean input" `Quick test_vivaldi_fits_euclidean_input;
          Alcotest.test_case "error decreases with rounds" `Quick
            test_vivaldi_error_decreases_with_rounds;
          Alcotest.test_case "tree metric keeps residual error" `Quick
            test_vivaldi_star_metric_has_residual_error;
          Alcotest.test_case "deterministic" `Quick test_vivaldi_deterministic;
          Alcotest.test_case "predicted properties" `Quick
            test_vivaldi_predicted_properties;
          Alcotest.test_case "relative errors shape" `Quick
            test_vivaldi_relative_errors_shape;
          Alcotest.test_case "finite on noisy input" `Quick test_vivaldi_coords_finite;
          Alcotest.test_case "single node" `Quick test_vivaldi_single_node;
        ] );
    ]
