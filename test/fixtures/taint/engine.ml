(* Fixture: hot-path root.  bwclint must report
   Engine.run_round -> Protocol.resend_pending -> Tbl.unsafe_iter
   as a determinism-taint error with the full witness path. *)

let run_round t = Protocol.resend_pending t
