(* Fixture: middle hop — no nondeterminism of its own, only what it
   inherits from Tbl.unsafe_iter. *)

let resend_pending t = Tbl.unsafe_iter t (fun _ _ -> ())
