(* Fixture: the raw-traversal leaf of the seeded taint chain.  This
   directory is skipped by recursive discovery (dirty corpus); lint it
   explicitly with `bwclint --taint test/fixtures/taint`. *)

let unsafe_iter t f = Hashtbl.iter f t
