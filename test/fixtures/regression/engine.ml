(* CI regression fixture root: reaches Unsafe_helper.drain transitively. *)

let flush t = Unsafe_helper.drain t
let run_round t = flush t
