(* CI regression fixture: a helper that quietly introduces an unordered
   traversal two hops from the engine.  The lint workflow runs bwclint
   over this directory and asserts it FAILS — proving the taint gate
   catches a regression that per-file rules alone would only flag at the
   leaf. *)

let drain t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
