(* Tests for bwc_dataset: container validation and preprocessing, CSV
   round-trips, the synthetic generators (including the calibrated
   PlanetLab-like ones), noise models, and the treeness sweep. *)

module Rng = Bwc_stats.Rng
module Dataset = Bwc_dataset.Dataset
module Dmatrix = Bwc_metric.Dmatrix

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

(* ----- container ----- *)

let test_make_rejects_nonpositive () =
  let bwm = Dmatrix.create 3 ~diag:Float.infinity ~off:0.0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dataset.make ~name:"bad" bwm);
       false
     with Invalid_argument _ -> true)

let test_bw_diagonal_infinite () =
  let ds = Dataset.make ~name:"ok" (Dmatrix.create 3 ~diag:Float.infinity ~off:10.0) in
  Alcotest.(check bool) "self" true (Float.equal (Dataset.bw ds 1 1) Float.infinity);
  Alcotest.(check (float 1e-9)) "pair" 10.0 (Dataset.bw ds 0 2)

let test_symmetrize_asymmetric () =
  let raw i j = float_of_int ((10 * i) + j + 1) in
  let ds = Dataset.symmetrize_asymmetric ~name:"sym" raw 3 in
  Alcotest.(check (float 1e-9))
    "averaged" ((raw 0 1 +. raw 1 0) /. 2.0) (Dataset.bw ds 0 1)

let test_subset_indices () =
  let raw i j = float_of_int (i + j + 1) in
  let ds = Dataset.symmetrize_asymmetric ~name:"base" raw 6 in
  let sub = Dataset.subset ds [| 5; 0; 3 |] in
  Alcotest.(check int) "size" 3 (Dataset.size sub);
  Alcotest.(check (float 1e-9)) "(0,2)=base(5,3)" (Dataset.bw ds 5 3) (Dataset.bw sub 0 2)

let test_random_subset () =
  let raw i j = float_of_int (i + j + 1) in
  let ds = Dataset.symmetrize_asymmetric ~name:"base" raw 20 in
  let sub = Dataset.random_subset ds ~rng:(Rng.create 3) 7 in
  Alcotest.(check int) "size" 7 (Dataset.size sub)

let test_complete_submatrix () =
  (* host 2 is missing most measurements; pruning must drop exactly it *)
  let raw i j =
    if i = j then None
    else if i = 2 || j = 2 then (if (i, j) = (2, 0) then Some 5.0 else None)
    else Some (float_of_int (i + j + 1))
  in
  let ds = Dataset.complete_submatrix ~name:"pruned" raw 5 in
  Alcotest.(check int) "dropped one host" 4 (Dataset.size ds)

let test_percentile_range () =
  let raw i j = float_of_int (i + j) in
  let ds = Dataset.symmetrize_asymmetric ~name:"p" raw 10 in
  let lo, hi = Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
  Alcotest.(check bool) "ordered" true (lo < hi)

let test_csv_roundtrip () =
  let ds =
    Bwc_dataset.Hier_tree.generate ~rng:(Rng.create 4) ~n:12 ~name:"csv-test" ()
  in
  let path = Filename.temp_file "bwc" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.save_csv ds path;
      let ds2 = Dataset.load_csv ~name:"csv-test" path in
      Alcotest.(check int) "size" (Dataset.size ds) (Dataset.size ds2);
      for i = 0 to Dataset.size ds - 1 do
        for j = i + 1 to Dataset.size ds - 1 do
          if not (feq ~eps:1e-5 (Dataset.bw ds i j) (Dataset.bw ds2 i j)) then
            Alcotest.failf "cell (%d,%d) mismatch" i j
        done
      done)

(* ----- generators ----- *)

let test_access_link_tree_metric () =
  let ds = Bwc_dataset.Access_link.generate ~rng:(Rng.create 5) ~n:12 () in
  Alcotest.(check bool)
    "perfect tree metric" true
    (Bwc_metric.Fourpoint.is_tree_metric ~tol:1e-6 (Dataset.metric ds))

let test_access_link_min_rule () =
  let caps = [| 10.0; 30.0; 20.0 |] in
  let ds = Bwc_dataset.Access_link.of_capacities ~name:"caps" caps in
  Alcotest.(check (float 1e-9)) "min" 10.0 (Dataset.bw ds 0 1);
  Alcotest.(check (float 1e-9)) "min" 20.0 (Dataset.bw ds 1 2)

let test_hier_tree_is_tree_metric () =
  let dm = Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create 6) ~n:14 () in
  Alcotest.(check bool)
    "4PC" true
    (Bwc_metric.Fourpoint.is_tree_metric ~tol:1e-6 (Bwc_metric.Space.of_dmatrix dm))

let test_hier_tree_metric_properties () =
  let dm = Bwc_dataset.Hier_tree.distance_matrix ~rng:(Rng.create 7) ~n:30 () in
  let r = Bwc_metric.Check.verify ~rng:(Rng.create 8) (Bwc_metric.Space.of_dmatrix dm) in
  Alcotest.(check bool) "metric" true (Bwc_metric.Check.is_metric r)

let test_planetlab_calibration () =
  List.iter
    (fun (target : Bwc_dataset.Planetlab.target) ->
      let target = { target with n = 100 } in
      let ds =
        Bwc_dataset.Planetlab.generate ~rng:(Rng.create 9) ~name:"cal" target
      in
      Alcotest.(check int) "size" 100 (Dataset.size ds);
      let lo, hi = Dataset.percentile_range ds ~lo:20.0 ~hi:80.0 in
      (* calibration tolerance: ratio within 15%, geometric mean within 10% *)
      let ratio = hi /. lo and want = target.Bwc_dataset.Planetlab.p80 /. target.p20 in
      if Float.abs (ratio /. want -. 1.0) > 0.15 then
        Alcotest.failf "spread off: got %.2f want %.2f" ratio want;
      let gm = sqrt (lo *. hi) and want_gm = sqrt (target.p20 *. target.p80) in
      if Float.abs (gm /. want_gm -. 1.0) > 0.10 then
        Alcotest.failf "level off: got %.2f want %.2f" gm want_gm)
    [ Bwc_dataset.Planetlab.hp_target; Bwc_dataset.Planetlab.umd_target ]

let test_planetlab_full_sizes () =
  let hp = Bwc_dataset.Planetlab.hp_like ~seed:1 in
  Alcotest.(check int) "hp hosts" 190 (Dataset.size hp);
  (* umd is larger; construct once to check the size contract *)
  let umd = Bwc_dataset.Planetlab.umd_like ~seed:1 in
  Alcotest.(check int) "umd hosts" 317 (Dataset.size umd)

let test_planetlab_deterministic () =
  let a = Bwc_dataset.Planetlab.generate ~rng:(Rng.create 3) ~name:"a"
      { Bwc_dataset.Planetlab.hp_target with n = 40 } in
  let b = Bwc_dataset.Planetlab.generate ~rng:(Rng.create 3) ~name:"b"
      { Bwc_dataset.Planetlab.hp_target with n = 40 } in
  Alcotest.(check (float 1e-9))
    "same matrix" 0.0
    (Dmatrix.max_symmetric_error a.Dataset.bw b.Dataset.bw)

(* ----- noise ----- *)

let test_noise_zero_sigma_identity () =
  let base = Bwc_dataset.Hier_tree.generate ~rng:(Rng.create 10) ~n:15 ~name:"b" () in
  let noisy = Bwc_dataset.Noise.multiplicative ~rng:(Rng.create 11) ~sigma:0.0 base in
  Alcotest.(check (float 1e-9))
    "identity" 0.0
    (Dmatrix.max_symmetric_error base.Dataset.bw noisy.Dataset.bw)

let test_noise_bounded_drift () =
  let base = Bwc_dataset.Hier_tree.generate ~rng:(Rng.create 12) ~n:15 ~name:"b" () in
  let drifted = Bwc_dataset.Noise.relative_clamp ~rng:(Rng.create 13) ~amplitude:0.2 base in
  Dmatrix.iter_pairs base.Dataset.bw (fun i j v ->
      let v' = Dataset.bw drifted i j in
      if v' < v *. 0.8 -. 1e-9 || v' > v *. 1.2 +. 1e-9 then
        Alcotest.failf "drift out of bounds at (%d,%d)" i j)

let test_host_drift_preserves_tree_metric () =
  let base = Bwc_dataset.Hier_tree.generate ~rng:(Rng.create 14) ~n:12 ~name:"b" () in
  let drifted = Bwc_dataset.Noise.host_drift ~rng:(Rng.create 15) ~amplitude:1.0 base in
  Alcotest.(check bool)
    "still a tree metric" true
    (Bwc_metric.Fourpoint.is_tree_metric ~tol:1e-6 (Dataset.metric drifted))

let test_host_drift_positive_bandwidth () =
  let base = Bwc_dataset.Hier_tree.generate ~rng:(Rng.create 16) ~n:20 ~name:"b" () in
  let drifted = Bwc_dataset.Noise.host_drift ~rng:(Rng.create 17) ~amplitude:3.0 base in
  Dmatrix.iter_pairs drifted.Dataset.bw (fun i j v ->
      if v <= 0.0 || not (Float.is_finite v) then Alcotest.failf "bad bw at (%d,%d)" i j)

(* ----- latency ----- *)

let test_latency_roundtrip () =
  let ds = Bwc_dataset.Latency.generate ~rng:(Rng.create 21) ~n:20 ~name:"lat" () in
  Alcotest.(check int) "size" 20 (Dataset.size ds);
  (* stored pseudo-bandwidth decodes back to positive milliseconds *)
  for i = 0 to 19 do
    for j = i + 1 to 19 do
      let ms = Bwc_dataset.Latency.latency_ms ds i j in
      if ms <= 0.0 || not (Float.is_finite ms) then Alcotest.fail "bad latency"
    done
  done;
  Alcotest.(check (float 1e-9)) "self latency" 0.0 (Bwc_dataset.Latency.latency_ms ds 3 3)

let test_latency_constraint_encoding () =
  (* "latency <= ms" and the pseudo-bandwidth constraint agree *)
  let ds = Bwc_dataset.Latency.generate ~rng:(Rng.create 22) ~n:15 ~name:"lat" () in
  let b = Bwc_dataset.Latency.bandwidth_constraint_for 25.0 in
  for i = 0 to 14 do
    for j = i + 1 to 14 do
      let within = Bwc_dataset.Latency.latency_ms ds i j <= 25.0 in
      let satisfies = Dataset.bw ds i j >= b in
      if within <> satisfies then Alcotest.fail "encoding mismatch"
    done
  done

let test_latency_nearly_tree_metric () =
  let ds = Bwc_dataset.Latency.generate ~rng:(Rng.create 23) ~n:40 ~name:"lat" () in
  let eps =
    Bwc_metric.Fourpoint.epsilon_avg ~samples:8000 ~rng:(Rng.create 24)
      (Dataset.metric ds)
  in
  Alcotest.(check bool) "small epsilon" true (eps < 0.05)

(* ----- treeness sweep ----- *)

let test_treeness_sweep_monotone () =
  let entries =
    Bwc_dataset.Treeness.sweep ~rng:(Rng.create 18) ~sigmas:[ 0.0; 0.2; 0.8 ] ~n:40 ()
  in
  match entries with
  | [ a; b; c ] ->
      Alcotest.(check bool) "zero noise ~ zero eps" true
        (a.Bwc_dataset.Treeness.epsilon_avg < 1e-9);
      Alcotest.(check bool) "monotone" true
        (a.Bwc_dataset.Treeness.epsilon_avg < b.Bwc_dataset.Treeness.epsilon_avg
        && b.Bwc_dataset.Treeness.epsilon_avg < c.Bwc_dataset.Treeness.epsilon_avg)
  | _ -> Alcotest.fail "expected three entries"

let test_subset_with_treeness () =
  let base = Bwc_dataset.Planetlab.generate ~rng:(Rng.create 19) ~name:"b"
      { Bwc_dataset.Planetlab.hp_target with n = 60 } in
  let hi =
    Bwc_dataset.Treeness.subset_with_treeness ~rng:(Rng.create 20) base ~size:30 ~tries:4
      ~high:true
  in
  let lo =
    Bwc_dataset.Treeness.subset_with_treeness ~rng:(Rng.create 20) base ~size:30 ~tries:4
      ~high:false
  in
  Alcotest.(check int) "size" 30 (Dataset.size hi.Bwc_dataset.Treeness.dataset);
  Alcotest.(check bool) "ordering" true
    (lo.Bwc_dataset.Treeness.epsilon_avg <= hi.Bwc_dataset.Treeness.epsilon_avg)

(* ----- qcheck ----- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"generated datasets are valid metrics" ~count:20
      (pair (int_range 6 25) (int_range 0 10_000))
      (fun (n, seed) ->
        let ds =
          Bwc_dataset.Hier_tree.generate ~rng:(Rng.create seed) ~n ~name:"q" ()
        in
        let r =
          Bwc_metric.Check.verify ~rng:(Rng.create (seed + 1)) (Dataset.metric ds)
        in
        Bwc_metric.Check.is_metric r);
    Test.make ~name:"subset of a dataset stays valid" ~count:30
      (pair (int_range 8 20) (int_range 0 10_000))
      (fun (n, seed) ->
        let rng = Rng.create seed in
        let ds = Bwc_dataset.Access_link.generate ~rng ~n () in
        let m = 2 + Rng.int rng (n - 2) in
        let sub = Dataset.random_subset ds ~rng m in
        Dataset.size sub = m);
  ]

let () =
  Alcotest.run "bwc_dataset"
    [
      ( "container",
        [
          Alcotest.test_case "rejects non-positive" `Quick test_make_rejects_nonpositive;
          Alcotest.test_case "diagonal infinite" `Quick test_bw_diagonal_infinite;
          Alcotest.test_case "symmetrize asymmetric" `Quick test_symmetrize_asymmetric;
          Alcotest.test_case "subset" `Quick test_subset_indices;
          Alcotest.test_case "random subset" `Quick test_random_subset;
          Alcotest.test_case "complete submatrix" `Quick test_complete_submatrix;
          Alcotest.test_case "percentile range" `Quick test_percentile_range;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
        ] );
      ( "generators",
        [
          Alcotest.test_case "access-link tree metric" `Quick
            test_access_link_tree_metric;
          Alcotest.test_case "access-link min rule" `Quick test_access_link_min_rule;
          Alcotest.test_case "hier tree 4PC" `Quick test_hier_tree_is_tree_metric;
          Alcotest.test_case "hier tree metric" `Quick test_hier_tree_metric_properties;
          Alcotest.test_case "planetlab calibration" `Slow test_planetlab_calibration;
          Alcotest.test_case "planetlab sizes" `Slow test_planetlab_full_sizes;
          Alcotest.test_case "planetlab deterministic" `Quick
            test_planetlab_deterministic;
        ] );
      ( "noise",
        [
          Alcotest.test_case "zero sigma identity" `Quick test_noise_zero_sigma_identity;
          Alcotest.test_case "bounded drift" `Quick test_noise_bounded_drift;
          Alcotest.test_case "host drift keeps tree metric" `Quick
            test_host_drift_preserves_tree_metric;
          Alcotest.test_case "host drift keeps bw positive" `Quick
            test_host_drift_positive_bandwidth;
        ] );
      ( "latency",
        [
          Alcotest.test_case "roundtrip" `Quick test_latency_roundtrip;
          Alcotest.test_case "constraint encoding" `Quick
            test_latency_constraint_encoding;
          Alcotest.test_case "nearly tree metric" `Quick test_latency_nearly_tree_metric;
        ] );
      ( "treeness",
        [
          Alcotest.test_case "sweep monotone" `Quick test_treeness_sweep_monotone;
          Alcotest.test_case "subset selection" `Quick test_subset_with_treeness;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
