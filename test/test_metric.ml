(* Tests for bwc_metric: symmetric matrices, the rational bandwidth
   transform, the four-point condition / treeness statistics, and the
   metric-property checker. *)

module Rng = Bwc_stats.Rng
module Dmatrix = Bwc_metric.Dmatrix
module Space = Bwc_metric.Space
module Bandwidth = Bwc_metric.Bandwidth
module Fourpoint = Bwc_metric.Fourpoint
module Check = Bwc_metric.Check

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.abs a)

let check_float ?eps msg expected actual =
  if not (feq ?eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ----- Dmatrix ----- *)

let test_dmatrix_symmetry () =
  let m = Dmatrix.create 5 ~diag:0.0 ~off:1.0 in
  Dmatrix.set m 1 3 42.0;
  check_float "set propagates" 42.0 (Dmatrix.get m 3 1);
  check_float "diag" 0.0 (Dmatrix.get m 2 2)

let test_dmatrix_of_fun () =
  let m = Dmatrix.of_fun 4 ~diag:0.0 (fun i j -> float_of_int ((10 * i) + j)) in
  check_float "(1,2)" 12.0 (Dmatrix.get m 1 2);
  check_float "(2,1) same cell" 12.0 (Dmatrix.get m 2 1)

let test_dmatrix_sub () =
  let m = Dmatrix.of_fun 5 ~diag:0.0 (fun i j -> float_of_int (i + j)) in
  let s = Dmatrix.sub m [| 4; 0; 2 |] in
  Alcotest.(check int) "size" 3 (Dmatrix.size s);
  check_float "(0,1) = m(4,0)" 4.0 (Dmatrix.get s 0 1);
  check_float "(1,2) = m(0,2)" 2.0 (Dmatrix.get s 1 2)

let test_dmatrix_sub_rejects_dup () =
  let m = Dmatrix.create 3 ~diag:0.0 ~off:1.0 in
  Alcotest.check_raises "dup" (Invalid_argument "Dmatrix.sub: duplicate index") (fun () ->
      ignore (Dmatrix.sub m [| 1; 1 |]))

let test_dmatrix_off_diagonal_values () =
  let m = Dmatrix.of_fun 3 ~diag:0.0 (fun i j -> float_of_int (i + j)) in
  Alcotest.(check (array (float 1e-9)))
    "upper triangle" [| 1.0; 2.0; 3.0 |]
    (Dmatrix.off_diagonal_values m)

let test_dmatrix_iter_pairs () =
  let m = Dmatrix.of_fun 4 ~diag:0.0 (fun i j -> float_of_int (i * j)) in
  let count = ref 0 in
  Dmatrix.iter_pairs m (fun i j v ->
      incr count;
      if i >= j then Alcotest.fail "pair order";
      check_float "value" (float_of_int (i * j)) v);
  Alcotest.(check int) "pair count" 6 !count

let test_dmatrix_diameter () =
  let m = Dmatrix.of_fun 5 ~diag:0.0 (fun i j -> float_of_int (i + j)) in
  check_float "diam {0,1,4}" 5.0 (Dmatrix.diameter_of m [ 0; 1; 4 ]);
  check_float "diam singleton" 0.0 (Dmatrix.diameter_of m [ 2 ])

let test_dmatrix_map_off_diagonal () =
  let m = Dmatrix.of_fun 3 ~diag:7.0 (fun _ _ -> 2.0) in
  let doubled = Dmatrix.map_off_diagonal m (fun _ _ v -> v *. 2.0) in
  check_float "off" 4.0 (Dmatrix.get doubled 0 1);
  check_float "diag untouched" 7.0 (Dmatrix.get doubled 1 1);
  check_float "original intact" 2.0 (Dmatrix.get m 0 1)

(* ----- Bandwidth ----- *)

let test_bandwidth_roundtrip () =
  check_float "to" 100.0 (Bandwidth.to_distance ~c:1000.0 10.0);
  check_float "of" 10.0 (Bandwidth.of_distance ~c:1000.0 100.0);
  check_float "self distance" 0.0 (Bandwidth.to_distance Float.infinity);
  Alcotest.(check bool)
    "self bandwidth" true
    (Float.equal (Bandwidth.of_distance 0.0) Float.infinity)

let test_bandwidth_paper_example () =
  (* Fig. 1: with C = 100 and d_T(b,c) = 23, BW_T(b,c) ~ 4.3; the text's
     "77" is 100 - 23 under the linear transform; both are exercised. *)
  check_float "rational" (100.0 /. 23.0) (Bandwidth.of_distance ~c:100.0 23.0);
  check_float "linear" 77.0 (Bandwidth.linear_of_distance ~c:100.0 23.0)

let test_bandwidth_rejects () =
  Alcotest.check_raises "zero bw"
    (Invalid_argument "Bandwidth.to_distance: non-positive bandwidth") (fun () ->
      ignore (Bandwidth.to_distance 0.0))

let test_symmetrize () = check_float "avg" 15.0 (Bandwidth.symmetrize 10.0 20.0)

(* ----- Space ----- *)

let test_space_restrict () =
  let m = Dmatrix.of_fun 5 ~diag:0.0 (fun i j -> float_of_int (i + j)) in
  let s = Space.restrict (Space.of_dmatrix m) [| 3; 1 |] in
  Alcotest.(check int) "n" 2 s.Space.n;
  check_float "dist" 4.0 (s.Space.dist 0 1)

let test_space_of_bandwidth () =
  let bw = Dmatrix.of_fun 3 ~diag:Float.infinity (fun _ _ -> 50.0) in
  let s = Space.of_bandwidth ~c:100.0 bw in
  check_float "transform" 2.0 (s.Space.dist 0 1);
  check_float "diag" 0.0 (s.Space.dist 1 1)

let test_space_cached_consistent () =
  let calls = ref 0 in
  let s =
    Space.make ~n:4 ~dist:(fun i j ->
        incr calls;
        float_of_int (abs (i - j)))
  in
  let cached = Space.cached s in
  let before = !calls in
  check_float "value" 2.0 (cached.Space.dist 1 3);
  check_float "value" 2.0 (cached.Space.dist 3 1);
  Alcotest.(check int) "no further evaluation" before !calls

(* ----- Fourpoint ----- *)

let star_space weights =
  (* hub-and-spoke: d(i,j) = w_i + w_j -- a canonical tree metric *)
  let n = Array.length weights in
  Space.make ~n ~dist:(fun i j -> if i = j then 0.0 else weights.(i) +. weights.(j))

let test_fourpoint_star_is_tree () =
  let s = star_space [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  Alcotest.(check bool) "4PC" true (Fourpoint.is_tree_metric s);
  check_float "eps exact" 0.0 (Fourpoint.epsilon_avg_exact s)

let test_fourpoint_min_model_is_tree () =
  (* BW(u,v) = min of capacities => tree metric (Sec. II-C) *)
  let caps = [| 10.0; 20.0; 5.0; 80.0; 40.0; 15.0 |] in
  let s =
    Space.make ~n:6 ~dist:(fun i j ->
        if i = j then 0.0 else 100.0 /. Float.min caps.(i) caps.(j))
  in
  Alcotest.(check bool) "4PC" true (Fourpoint.is_tree_metric s)

let test_fourpoint_square_violates () =
  (* the unit square in the plane violates 4PC: the two diagonals pair up *)
  let pts = [| (0.0, 0.0); (1.0, 0.0); (1.0, 1.0); (0.0, 1.0) |] in
  let s =
    Space.make ~n:4 ~dist:(fun i j ->
        let xi, yi = pts.(i) and xj, yj = pts.(j) in
        sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)))
  in
  Alcotest.(check bool) "violates" false (Fourpoint.is_tree_metric s);
  Alcotest.(check bool) "eps > 0" true (Fourpoint.epsilon s 0 1 2 3 > 0.0)

let test_fourpoint_epsilon_value () =
  (* square: sums are 2, 2*sqrt2, 2*sqrt2... sides pair to 2; diagonal
     pairing 2*sqrt2. s1=2, s2=2, s3=2sqrt2: eps = (2sqrt2-2)/(2*2) *)
  let pts = [| (0.0, 0.0); (1.0, 0.0); (1.0, 1.0); (0.0, 1.0) |] in
  let s =
    Space.make ~n:4 ~dist:(fun i j ->
        let xi, yi = pts.(i) and xj, yj = pts.(j) in
        sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0)))
  in
  check_float "epsilon" (((2.0 *. sqrt 2.0) -. 2.0) /. 4.0) (Fourpoint.epsilon s 0 1 2 3)

let test_fourpoint_hier_tree_eps_zero () =
  let rng = Rng.create 5 in
  let dm = Bwc_dataset.Hier_tree.distance_matrix ~rng ~n:30 () in
  let s = Space.of_dmatrix dm in
  Alcotest.(check bool)
    "sampled eps ~ 0" true
    (Fourpoint.epsilon_avg ~samples:5000 ~rng s < 1e-9)

let test_fourpoint_noise_increases_eps () =
  let rng = Rng.create 6 in
  let base = Bwc_dataset.Hier_tree.generate ~rng ~n:40 ~name:"base" () in
  let eps_at sigma =
    let ds =
      if Float.equal sigma 0.0 then base
      else Bwc_dataset.Noise.multiplicative ~rng:(Rng.create 7) ~sigma base
    in
    Fourpoint.epsilon_avg ~samples:8000 ~rng:(Rng.create 8) (Bwc_dataset.Dataset.metric ds)
  in
  let e0 = eps_at 0.0 and e1 = eps_at 0.1 and e2 = eps_at 0.4 in
  Alcotest.(check bool) "monotone" true (e0 < e1 && e1 < e2)

let test_epsilon_star () =
  check_float "at 0" 0.0 (Fourpoint.epsilon_star 0.0);
  check_float "at 1" 0.5 (Fourpoint.epsilon_star 1.0);
  Alcotest.(check bool) "bounded" true (Fourpoint.epsilon_star 1e9 < 1.0)

(* ----- Check ----- *)

let test_check_valid_metric () =
  let rng = Rng.create 9 in
  let dm = Bwc_dataset.Hier_tree.distance_matrix ~rng ~n:25 () in
  let r = Check.verify ~rng (Space.of_dmatrix dm) in
  Alcotest.(check bool) "is metric" true (Check.is_metric r)

let test_check_triangle_violation () =
  let m = Dmatrix.create 3 ~diag:0.0 ~off:1.0 in
  Dmatrix.set m 0 2 5.0;
  (* d(0,2)=5 > d(0,1)+d(1,2)=2 *)
  let r = Check.verify ~rng:(Rng.create 1) (Space.of_dmatrix m) in
  Alcotest.(check bool) "violations found" true (r.Check.triangle_violations > 0.0)

let test_check_negative () =
  let m = Dmatrix.create 3 ~diag:0.0 ~off:(-1.0) in
  let r = Check.verify ~rng:(Rng.create 1) (Space.of_dmatrix m) in
  Alcotest.(check bool) "negative flagged" false r.Check.non_negative

(* ----- Coreset ----- *)

module CSummary = Bwc_metric.Coreset
module Find_cluster = Bwc_core.Find_cluster

let coreset_space ?(n = 12) seed =
  let rng = Rng.create seed in
  Space.of_dmatrix (Bwc_dataset.Hier_tree.distance_matrix ~rng ~n ())

let probe_ls space =
  let values = Dmatrix.off_diagonal_values (Space.to_dmatrix space) in
  Array.sort Float.compare values;
  let m = Array.length values in
  [| 0.0; values.(m / 4); values.(m / 2); values.(3 * m / 4); values.(m - 1) *. 1.5 |]

let all_hosts n = List.init n Fun.id

let test_coreset_k1_degenerate () =
  let n = 12 in
  let space = coreset_space ~n 41 in
  let s = CSummary.of_points space ~k:1 (all_hosts n) in
  Alcotest.(check int) "one representative" 1 (CSummary.size s);
  Alcotest.(check int) "weight conserved" n (CSummary.weight s);
  Array.iter
    (fun l ->
      let exact = Find_cluster.max_size space ~l in
      let iv = CSummary.max_size space s ~l in
      Alcotest.(check bool)
        (Printf.sprintf "bracket holds at l=%g" l)
        true
        (iv.CSummary.lo <= exact && exact <= iv.CSummary.hi);
      match CSummary.exists space s ~k:2 ~l with
      | `Yes -> Alcotest.(check bool) "Yes sound" true (exact >= 2)
      | `No -> Alcotest.(check bool) "No sound" true (exact < 2)
      | `Maybe -> ())
    (probe_ls space)

let test_coreset_collapse_exact () =
  let n = 12 in
  let space = coreset_space ~n 42 in
  let s = CSummary.of_points space ~k:n (all_hosts n) in
  Alcotest.(check int) "all points representatives" n (CSummary.size s);
  Array.iter
    (fun (r : CSummary.rep) ->
      Alcotest.(check bool) "radius zero" true (Float.equal r.CSummary.radius 0.0))
    (CSummary.reps s);
  Array.iter
    (fun l ->
      let exact = Find_cluster.max_size space ~l in
      let iv = CSummary.max_size space s ~l in
      Alcotest.(check int) (Printf.sprintf "lo collapses at l=%g" l) exact iv.CSummary.lo;
      Alcotest.(check int) (Printf.sprintf "hi collapses at l=%g" l) exact iv.CSummary.hi;
      for k = 2 to n do
        let exact_e = Find_cluster.exists space ~k ~l in
        (match CSummary.exists space s ~k ~l with
        | `Yes -> Alcotest.(check bool) "Yes = exact" true exact_e
        | `No -> Alcotest.(check bool) "No = exact" false exact_e
        | `Maybe -> Alcotest.fail "tri-state must be decisive at k >= n");
        match CSummary.find_certain space s ~k ~l with
        | Some cl ->
            Alcotest.(check int) "find size" k (List.length cl);
            Alcotest.(check bool) "find only when feasible" true exact_e
        | None -> Alcotest.(check bool) "find conclusive at collapse" false exact_e
      done)
    (probe_ls space)

let test_coreset_add_remove_roundtrip () =
  let n = 12 in
  let space = coreset_space ~n 43 in
  let extra = 7 in
  let initial = List.filter (fun h -> h <> extra) (all_hosts n) in
  let cor = Find_cluster.Coreset.of_members ~k:4 space initial in
  let before = Find_cluster.Coreset.summary cor in
  Find_cluster.Coreset.add cor extra;
  Alcotest.(check bool) "added" true (Find_cluster.Coreset.is_member cor extra);
  Alcotest.(check int) "weight grows" n
    (CSummary.weight (Find_cluster.Coreset.summary cor));
  Find_cluster.Coreset.remove cor extra;
  Alcotest.(check (list int)) "members restored" initial
    (Find_cluster.Coreset.members cor);
  (* a leaf add/remove pair restores the exact topology, and summaries
     are a pure function of (space, k, topology) — so byte-equal *)
  Alcotest.(check bool)
    "summary is an inverse round-trip" true
    (CSummary.equal before (Find_cluster.Coreset.summary cor));
  Array.iter
    (fun l ->
      let a = Find_cluster.Coreset.max_size cor ~l in
      let b = CSummary.max_size space before ~l in
      Alcotest.(check bool) "bounds unchanged" true (a = b))
    (probe_ls space)

let test_coreset_merge_rejects_overlap () =
  let space = coreset_space 44 in
  let a = CSummary.of_points space ~k:4 [ 0; 1; 2 ] in
  let b = CSummary.of_points space ~k:4 [ 2; 3 ] in
  Alcotest.check_raises "duplicate host" (Invalid_argument "Coreset: duplicate host")
    (fun () -> ignore (CSummary.merge space ~k:4 [ a; b ]))

let test_coreset_interval_sanity () =
  let n = 12 in
  let space = coreset_space ~n 45 in
  List.iter
    (fun k ->
      let s = CSummary.of_points space ~k (all_hosts n) in
      Alcotest.(check int) (Printf.sprintf "weight conserved k=%d" k) n
        (CSummary.weight s);
      Array.iter
        (fun l ->
          let iv = CSummary.max_size space s ~l in
          Alcotest.(check bool)
            (Printf.sprintf "lo <= hi (k=%d, l=%g)" k l)
            true
            (iv.CSummary.lo <= iv.CSummary.hi))
        (probe_ls space))
    [ 1; 2; 3; 5; 8 ]

(* ----- qcheck ----- *)

let qcheck_tests =
  let open QCheck in
  let pos_float = float_range 0.1 1000.0 in
  [
    Test.make ~name:"rational transform roundtrips" ~count:500 pos_float (fun bw ->
        feq ~eps:1e-9 bw (Bandwidth.of_distance (Bandwidth.to_distance bw)));
    Test.make ~name:"star metrics satisfy 4PC" ~count:100
      (array_of_size (Gen.int_range 4 8) pos_float)
      (fun weights -> Fourpoint.is_tree_metric ~tol:1e-6 (star_space weights));
    Test.make ~name:"dmatrix sub preserves entries" ~count:100
      (pair (int_range 3 10) (int_range 0 1000))
      (fun (n, seed) ->
        let rng = Rng.create seed in
        let m = Dmatrix.of_fun n ~diag:0.0 (fun _ _ -> Rng.float rng 10.0) in
        let idx = Rng.sample_without_replacement rng (n - 1) n in
        let s = Dmatrix.sub m idx in
        let ok = ref true in
        for a = 0 to n - 2 do
          for b = 0 to n - 2 do
            if not (feq (Dmatrix.get s a b) (Dmatrix.get m idx.(a) idx.(b))) then
              ok := false
          done
        done;
        !ok);
  ]

let () =
  Alcotest.run "bwc_metric"
    [
      ( "dmatrix",
        [
          Alcotest.test_case "symmetry" `Quick test_dmatrix_symmetry;
          Alcotest.test_case "of_fun" `Quick test_dmatrix_of_fun;
          Alcotest.test_case "sub" `Quick test_dmatrix_sub;
          Alcotest.test_case "sub rejects dup" `Quick test_dmatrix_sub_rejects_dup;
          Alcotest.test_case "off-diagonal values" `Quick test_dmatrix_off_diagonal_values;
          Alcotest.test_case "iter pairs" `Quick test_dmatrix_iter_pairs;
          Alcotest.test_case "diameter" `Quick test_dmatrix_diameter;
          Alcotest.test_case "map off-diagonal" `Quick test_dmatrix_map_off_diagonal;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "roundtrip" `Quick test_bandwidth_roundtrip;
          Alcotest.test_case "paper example" `Quick test_bandwidth_paper_example;
          Alcotest.test_case "rejects non-positive" `Quick test_bandwidth_rejects;
          Alcotest.test_case "symmetrize" `Quick test_symmetrize;
        ] );
      ( "space",
        [
          Alcotest.test_case "restrict" `Quick test_space_restrict;
          Alcotest.test_case "of_bandwidth" `Quick test_space_of_bandwidth;
          Alcotest.test_case "cached" `Quick test_space_cached_consistent;
        ] );
      ( "fourpoint",
        [
          Alcotest.test_case "star is tree metric" `Quick test_fourpoint_star_is_tree;
          Alcotest.test_case "min model is tree metric" `Quick
            test_fourpoint_min_model_is_tree;
          Alcotest.test_case "square violates 4PC" `Quick test_fourpoint_square_violates;
          Alcotest.test_case "epsilon value" `Quick test_fourpoint_epsilon_value;
          Alcotest.test_case "hier tree eps = 0" `Quick test_fourpoint_hier_tree_eps_zero;
          Alcotest.test_case "noise raises eps" `Quick test_fourpoint_noise_increases_eps;
          Alcotest.test_case "epsilon_star" `Quick test_epsilon_star;
        ] );
      ( "check",
        [
          Alcotest.test_case "valid metric" `Quick test_check_valid_metric;
          Alcotest.test_case "triangle violation" `Quick test_check_triangle_violation;
          Alcotest.test_case "negative distance" `Quick test_check_negative;
        ] );
      ( "coreset",
        [
          Alcotest.test_case "k=1 degenerate" `Quick test_coreset_k1_degenerate;
          Alcotest.test_case "k>=n collapses to exact" `Quick test_coreset_collapse_exact;
          Alcotest.test_case "add/remove round-trip" `Quick
            test_coreset_add_remove_roundtrip;
          Alcotest.test_case "merge rejects overlap" `Quick
            test_coreset_merge_rejects_overlap;
          Alcotest.test_case "interval sanity" `Quick test_coreset_interval_sanity;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
