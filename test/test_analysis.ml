(* Tests for the bwclint engine: one failing fixture per rule, a clean
   fixture, suppression semantics, path scoping, and the reporters.

   Fixture sources are inline strings.  Suppression comments inside
   fixtures are assembled with [sup]/[sup_all] rather than written
   literally: Suppress.scan works on raw source text, so a literal
   marker inside these string constants would register a (stale)
   suppression against this very file when bwclint lints the test
   directory. *)

module Engine = Bwc_analysis.Engine
module Finding = Bwc_analysis.Finding
module Report = Bwc_analysis.Report
module Rules = Bwc_analysis.Rules

let sup rule = Printf.sprintf "(* bwclint%s allow %s *)" ":" rule
let sup_all () = sup "all"

(* default fixture path sits inside lib/core so every path-scoped rule
   (no-partial-stdlib, no-print-in-lib) is live *)
let lint ?(path = "lib/core/fixture.ml") src = Engine.lint_source ~path src

let rule_ids result =
  List.map (fun f -> f.Finding.rule) result.Engine.findings

let check_single_finding name ?path ~rule src =
  Alcotest.(check (list string))
    name [ rule ]
    (rule_ids (lint ?path src))

(* ----- one failing fixture per rule ----- *)

let test_no_stdlib_random () =
  check_single_finding "Random.* flagged" ~rule:"no-stdlib-random"
    "let x = Random.int 5\n";
  check_single_finding "Stdlib.Random too" ~rule:"no-stdlib-random"
    "let x = Stdlib.Random.bool ()\n"

let test_no_unordered_hashtbl_iter () =
  check_single_finding "Hashtbl.iter flagged" ~rule:"no-unordered-hashtbl-iter"
    "let f t = Hashtbl.iter (fun _ _ -> ()) t\n";
  check_single_finding "Hashtbl.fold flagged" ~rule:"no-unordered-hashtbl-iter"
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n"

let test_no_polymorphic_compare_on_floats () =
  check_single_finding "= with float literal" ~rule:"no-polymorphic-compare-on-floats"
    "let f x = x = 0.0\n";
  check_single_finding "compare with Float constant" ~rule:"no-polymorphic-compare-on-floats"
    "let f x = compare x Float.infinity\n"

let test_no_partial_stdlib () =
  check_single_finding "List.hd in lib/core" ~rule:"no-partial-stdlib"
    "let f l = List.hd l\n";
  check_single_finding "Option.get in lib/sim" ~path:"lib/sim/fixture.ml"
    ~rule:"no-partial-stdlib" "let f o = Option.get o\n"

let test_no_quadratic_append () =
  check_single_finding "acc @ [x]" ~rule:"no-quadratic-append"
    "let f acc x = acc @ [ x ]\n";
  check_single_finding "@ under let rec" ~rule:"no-quadratic-append"
    "let rec go acc l = match l with [] -> acc | x :: tl -> go (acc @ tl) tl\n"

let test_no_print_in_lib () =
  check_single_finding "print_endline in lib" ~rule:"no-print-in-lib"
    "let f () = print_endline \"hi\"\n";
  check_single_finding "exit in lib" ~rule:"no-print-in-lib"
    "let f () = exit 1\n"

let test_no_wall_clock_in_lib () =
  check_single_finding "Unix.gettimeofday in lib" ~rule:"no-wall-clock-in-lib"
    "let now () = Unix.gettimeofday ()\n";
  check_single_finding "Sys.time in lib" ~rule:"no-wall-clock-in-lib"
    "let cpu () = Sys.time ()\n";
  (* span.ml is the audited wall-clock reader *)
  Alcotest.(check (list string))
    "span.ml exempt" []
    (rule_ids
       (lint ~path:"lib/obs/span.ml" "let now () = Unix.gettimeofday ()\n"));
  (* wall time outside lib/ is fine *)
  Alcotest.(check (list string))
    "bench may time" []
    (rule_ids
       (lint ~path:"bench/fixture.ml" "let now () = Unix.gettimeofday ()\n"))

let test_naked_failwith () =
  check_single_finding "unprefixed failwith" ~rule:"naked-failwith"
    "let f () = failwith \"boom\"\n";
  Alcotest.(check (list string))
    "Module.fn prefix accepted" []
    (rule_ids (lint "let f () = failwith \"Fixture.f: boom\"\n"))

let test_no_obj_magic () =
  check_single_finding "Obj.magic flagged" ~rule:"no-obj-magic"
    "let f x = Obj.magic x\n"

let test_no_marshal () =
  check_single_finding "Marshal.to_string flagged" ~rule:"no-marshal"
    "let f x = Marshal.to_string x []\n";
  check_single_finding "Marshal.from_string flagged" ~rule:"no-marshal"
    "let f s = Marshal.from_string s 0\n";
  check_single_finding "Marshal.to_channel in persist itself" ~rule:"no-marshal"
    ~path:"lib/persist/fixture.ml"
    "let f oc x = Marshal.to_channel oc x []\n";
  (* the rule guards durable library state; bin/ writes nothing durable *)
  Alcotest.(check (list string))
    "Marshal fine outside lib/" []
    (rule_ids (lint ~path:"bin/fixture.ml" "let f x = Marshal.to_string x []\n"))

(* ----- clean fixture ----- *)

let clean_src =
  "let eps = 1e-9\n\
   let close a b = Float.abs (a -. b) < eps\n\
   let first = function [] -> None | x :: _ -> Some x\n\
   let rec sum acc = function [] -> acc | x :: tl -> sum (acc + x) tl\n"

let test_clean () =
  let r = lint clean_src in
  Alcotest.(check (list string)) "no findings" [] (rule_ids r);
  Alcotest.(check int) "one file" 1 r.Engine.files_scanned;
  Alcotest.(check bool) "parsed" false r.Engine.parse_failed

(* ----- suppressions ----- *)

let test_suppression_same_line () =
  let src =
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] "
    ^ sup "no-unordered-hashtbl-iter"
    ^ "\n"
  in
  let r = lint src in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids r);
  Alcotest.(check int) "counted" 1 r.Engine.suppressions_used

let test_suppression_line_above () =
  let src =
    sup "no-partial-stdlib" ^ "\nlet f l = List.hd l\n"
  in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids (lint src))

let test_suppression_exists_scan () =
  (* mirrors the audited detector.ml [pending] site: an order-independent
     exists-scan (commutative OR) over a Hashtbl, suppressed on the line
     above the indented iteration *)
  let src =
    "let pending t round =\n  let p = ref false in\n  "
    ^ sup "no-unordered-hashtbl-iter"
    ^ "\n\
      \  Hashtbl.iter (fun _ last -> if round - last > 3 then p := true) t;\n\
      \  !p\n"
  in
  let r = lint src in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids r);
  Alcotest.(check int) "one audited site" 1 r.Engine.suppressions_used

let test_suppression_wrong_rule () =
  (* a suppression for a different rule must not mask the finding, and
     is itself reported as stale *)
  let src = "let f l = List.hd l " ^ sup "no-stdlib-random" ^ "\n" in
  Alcotest.(check (list string))
    "finding kept, stale suppression reported"
    [ "no-partial-stdlib"; "unused-suppression" ]
    (List.sort String.compare (rule_ids (lint src)))

let test_suppression_all () =
  let src = "let f l = List.hd (Obj.magic l) " ^ sup_all () ^ "\n" in
  Alcotest.(check (list string)) "allow all suppresses both" []
    (rule_ids (lint src))

let test_unused_suppression_reported () =
  let src = "let f x = x + 1 " ^ sup "no-stdlib-random" ^ "\n" in
  match (lint src).Engine.findings with
  | [ f ] ->
      Alcotest.(check string) "rule" Engine.unused_suppression_rule f.Finding.rule;
      Alcotest.(check int) "line" 1 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* ----- path scoping ----- *)

let test_rule_path_scoping () =
  (* partial accessors are only banned inside lib/core and lib/sim *)
  Alcotest.(check (list string))
    "List.hd fine outside protocol paths" []
    (rule_ids (lint ~path:"lib/experiments/fixture.ml" "let f l = List.hd l\n"));
  (* the seeded-rng module is the one place allowed to talk about Random *)
  Alcotest.(check (list string))
    "rng.ml exempt from no-stdlib-random" []
    (rule_ids (lint ~path:"lib/stats/rng.ml" "let x = Random.int 5\n"));
  (* print is only banned under lib/ *)
  Alcotest.(check (list string))
    "print fine in bin" []
    (rule_ids (lint ~path:"bin/fixture.ml" "let f () = print_endline \"x\"\n"))

let test_mli_parsing () =
  let r = lint ~path:"lib/core/fixture.mli" "val f : int -> int\n" in
  Alcotest.(check (list string)) "clean mli" [] (rule_ids r);
  Alcotest.(check bool) "parsed" false r.Engine.parse_failed

(* ----- parse failure ----- *)

let test_parse_error () =
  let r = lint "let let let\n" in
  Alcotest.(check bool) "parse_failed" true r.Engine.parse_failed;
  match r.Engine.findings with
  | [ f ] -> Alcotest.(check string) "rule" Engine.parse_error_rule f.Finding.rule
  | _ -> Alcotest.fail "expected exactly one parse-error finding"

(* ----- reporters ----- *)

let test_json_report () =
  let r = lint "let x = Random.int 5\n" in
  let out = Format.asprintf "%a" Report.json r in
  let has sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rule field" true (has "\"rule\":\"no-stdlib-random\"");
  Alcotest.(check bool) "severity field" true (has "\"severity\":\"error\"");
  Alcotest.(check bool) "file field" true (has "\"file\":\"lib/core/fixture.ml\"");
  Alcotest.(check bool) "errors count" true (has "\"errors\": 1")

let test_json_escaping () =
  Alcotest.(check string)
    "quotes and newlines escaped" "\"a\\\"b\\nc\\\\d\""
    (Report.json_string "a\"b\nc\\d")

let test_human_report () =
  let r = lint "let f acc x = acc @ [ x ]\n" in
  let out = Format.asprintf "%a" Report.human r in
  let has sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "location prefix" true (has "lib/core/fixture.ml:1:");
  Alcotest.(check bool) "summary line" true (has "1 file scanned: 0 errors, 1 warning")

let test_rule_catalog_complete () =
  (* every rule the acceptance criteria names exists in the registry *)
  List.iter
    (fun id ->
      match Rules.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "rule %s missing from catalog" id)
    [
      "no-stdlib-random";
      "no-unordered-hashtbl-iter";
      "no-polymorphic-compare-on-floats";
      "no-partial-stdlib";
      "no-quadratic-append";
      "no-print-in-lib";
      "no-wall-clock-in-lib";
      "naked-failwith";
      "no-obj-magic";
      "no-marshal";
    ]

let () =
  Alcotest.run "bwc_analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "no-stdlib-random" `Quick test_no_stdlib_random;
          Alcotest.test_case "no-unordered-hashtbl-iter" `Quick
            test_no_unordered_hashtbl_iter;
          Alcotest.test_case "no-polymorphic-compare-on-floats" `Quick
            test_no_polymorphic_compare_on_floats;
          Alcotest.test_case "no-partial-stdlib" `Quick test_no_partial_stdlib;
          Alcotest.test_case "no-quadratic-append" `Quick test_no_quadratic_append;
          Alcotest.test_case "no-print-in-lib" `Quick test_no_print_in_lib;
          Alcotest.test_case "no-wall-clock-in-lib" `Quick test_no_wall_clock_in_lib;
          Alcotest.test_case "naked-failwith" `Quick test_naked_failwith;
          Alcotest.test_case "no-obj-magic" `Quick test_no_obj_magic;
          Alcotest.test_case "no-marshal" `Quick test_no_marshal;
          Alcotest.test_case "clean fixture" `Quick test_clean;
          Alcotest.test_case "catalog complete" `Quick test_rule_catalog_complete;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "same line" `Quick test_suppression_same_line;
          Alcotest.test_case "line above" `Quick test_suppression_line_above;
          Alcotest.test_case "exists-scan site" `Quick
            test_suppression_exists_scan;
          Alcotest.test_case "wrong rule kept" `Quick test_suppression_wrong_rule;
          Alcotest.test_case "allow all" `Quick test_suppression_all;
          Alcotest.test_case "stale reported" `Quick test_unused_suppression_reported;
        ] );
      ( "engine",
        [
          Alcotest.test_case "path scoping" `Quick test_rule_path_scoping;
          Alcotest.test_case "mli parsing" `Quick test_mli_parsing;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "reporters",
        [
          Alcotest.test_case "json" `Quick test_json_report;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "human" `Quick test_human_report;
        ] );
    ]
