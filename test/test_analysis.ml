(* Tests for the bwclint engine: one failing fixture per rule, a clean
   fixture, suppression semantics, path scoping, the reporters, and the
   whole-program layer — call-graph resolution (cross-module, aliases,
   shadowing), interprocedural taint with witness paths, the
   domain-safety audit, baseline diffing, and SARIF shape.

   Fixture sources are inline strings.  Suppression comments inside
   fixtures are assembled with [sup]/[sup_all] rather than written
   literally: Suppress.scan works on raw source text, so a literal
   marker inside these string constants would register a (stale)
   suppression against this very file when bwclint lints the test
   directory. *)

module Engine = Bwc_analysis.Engine
module Finding = Bwc_analysis.Finding
module Report = Bwc_analysis.Report
module Rules = Bwc_analysis.Rules
module Callgraph = Bwc_analysis.Callgraph
module Taint = Bwc_analysis.Taint
module Baseline = Bwc_analysis.Baseline
module Sarif = Bwc_analysis.Sarif

let sup ?(reason = "test audit") rule =
  Printf.sprintf "(* bwclint%s allow %s -- %s *)" ":" rule reason

let sup_bare rule = Printf.sprintf "(* bwclint%s allow %s *)" ":" rule
let sup_all () = sup "all"

(* default fixture path sits inside lib/core so every path-scoped rule
   (no-partial-stdlib, no-print-in-lib) is live *)
let lint ?(path = "lib/core/fixture.ml") src = Engine.lint_source ~path src

let rule_ids result =
  List.map (fun f -> f.Finding.rule) result.Engine.findings

let check_single_finding name ?path ~rule src =
  Alcotest.(check (list string))
    name [ rule ]
    (rule_ids (lint ?path src))

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ----- one failing fixture per rule ----- *)

let test_no_stdlib_random () =
  check_single_finding "Random.* flagged" ~rule:"no-stdlib-random"
    "let x = Random.int 5\n";
  check_single_finding "Stdlib.Random too" ~rule:"no-stdlib-random"
    "let x = Stdlib.Random.bool ()\n"

let test_no_unordered_hashtbl_iter () =
  check_single_finding "Hashtbl.iter flagged" ~rule:"no-unordered-hashtbl-iter"
    "let f t = Hashtbl.iter (fun _ _ -> ()) t\n";
  check_single_finding "Hashtbl.fold flagged" ~rule:"no-unordered-hashtbl-iter"
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n"

let test_no_polymorphic_compare_on_floats () =
  check_single_finding "= with float literal" ~rule:"no-polymorphic-compare-on-floats"
    "let f x = x = 0.0\n";
  check_single_finding "compare with Float constant" ~rule:"no-polymorphic-compare-on-floats"
    "let f x = compare x Float.infinity\n"

let test_no_partial_stdlib () =
  check_single_finding "List.hd in lib/core" ~rule:"no-partial-stdlib"
    "let f l = List.hd l\n";
  check_single_finding "Option.get in lib/sim" ~path:"lib/sim/fixture.ml"
    ~rule:"no-partial-stdlib" "let f o = Option.get o\n"

let test_no_quadratic_append () =
  check_single_finding "acc @ [x]" ~rule:"no-quadratic-append"
    "let f acc x = acc @ [ x ]\n";
  check_single_finding "@ under let rec" ~rule:"no-quadratic-append"
    "let rec go acc l = match l with [] -> acc | x :: tl -> go (acc @ tl) tl\n"

let test_no_print_in_lib () =
  check_single_finding "print_endline in lib" ~rule:"no-print-in-lib"
    "let f () = print_endline \"hi\"\n";
  check_single_finding "exit in lib" ~rule:"no-print-in-lib"
    "let f () = exit 1\n"

let test_no_wall_clock_in_lib () =
  check_single_finding "Unix.gettimeofday in lib" ~rule:"no-wall-clock-in-lib"
    "let now () = Unix.gettimeofday ()\n";
  check_single_finding "Sys.time in lib" ~rule:"no-wall-clock-in-lib"
    "let cpu () = Sys.time ()\n";
  (* span.ml is the audited wall-clock reader *)
  Alcotest.(check (list string))
    "span.ml exempt" []
    (rule_ids
       (lint ~path:"lib/obs/span.ml" "let now () = Unix.gettimeofday ()\n"));
  (* wall time outside lib/ is fine *)
  Alcotest.(check (list string))
    "bench may time" []
    (rule_ids
       (lint ~path:"bench/fixture.ml" "let now () = Unix.gettimeofday ()\n"))

let test_no_blocking_io_in_daemon_core () =
  check_single_finding "Unix syscall in daemon core"
    ~path:"lib/daemon/reactor.ml" ~rule:"no-blocking-io-in-daemon-core"
    "let f fd buf = Unix.read fd buf 0 10\n";
  check_single_finding "In_channel in daemon core"
    ~path:"lib/daemon/lifecycle.ml" ~rule:"no-blocking-io-in-daemon-core"
    "let f path = In_channel.with_open_bin path (fun ic -> ic)\n";
  check_single_finding "channel primitive in daemon core"
    ~path:"lib/daemon/wire.ml" ~rule:"no-blocking-io-in-daemon-core"
    "let f ic = input_line ic\n";
  (* the transport shell owns the sockets: bin/ is exempt *)
  Alcotest.(check (list string))
    "bwclusterd transport may use Unix" []
    (rule_ids
       (lint ~path:"bin/bwclusterd.ml"
          "let f fd buf = Unix.read fd buf 0 10\n"));
  (* and other libraries are governed by their own rules, not this one *)
  Alcotest.(check (list string))
    "persist file IO untouched by the daemon rule" []
    (rule_ids
       (lint ~path:"lib/persist/fixture.ml"
          "let f path = In_channel.with_open_bin path In_channel.input_all\n"))

let test_naked_failwith () =
  check_single_finding "unprefixed failwith" ~rule:"naked-failwith"
    "let f () = failwith \"boom\"\n";
  Alcotest.(check (list string))
    "Module.fn prefix accepted" []
    (rule_ids (lint "let f () = failwith \"Fixture.f: boom\"\n"))

let test_no_obj_magic () =
  check_single_finding "Obj.magic flagged" ~rule:"no-obj-magic"
    "let f x = Obj.magic x\n"

let test_no_marshal () =
  check_single_finding "Marshal.to_string flagged" ~rule:"no-marshal"
    "let f x = Marshal.to_string x []\n";
  check_single_finding "Marshal.from_string flagged" ~rule:"no-marshal"
    "let f s = Marshal.from_string s 0\n";
  check_single_finding "Marshal.to_channel in persist itself" ~rule:"no-marshal"
    ~path:"lib/persist/fixture.ml"
    "let f oc x = Marshal.to_channel oc x []\n";
  (* the rule guards durable library state; bin/ writes nothing durable *)
  Alcotest.(check (list string))
    "Marshal fine outside lib/" []
    (rule_ids (lint ~path:"bin/fixture.ml" "let f x = Marshal.to_string x []\n"))

let test_no_unlabelled_send () =
  check_single_finding "Send without kind/bytes" ~rule:"no-unlabelled-send"
    "let f tr = emit tr (Trace.Send { round = 1; msg = 0; lc = 1; src = 0; \
     dst = 1 })\n";
  check_single_finding "Deliver missing bytes" ~rule:"no-unlabelled-send"
    ~path:"lib/sim/fixture.ml"
    "let f tr k = emit tr (Trace.Deliver { round = 1; msg = 0; kind = k; lc \
     = 1; src = 0; dst = 1 })\n";
  check_single_finding "event from a variable" ~rule:"no-unlabelled-send"
    "let f tr e = emit tr (Trace.Send e)\n";
  check_single_finding "qualified constructor too" ~rule:"no-unlabelled-send"
    "let f tr = emit tr (Bwc_obs.Trace.Send { round = 1; msg = 0; kind = k; \
     lc = 1; src = 0; dst = 1 })\n";
  Alcotest.(check (list string))
    "labelled send accepted" []
    (rule_ids
       (lint
          "let f tr k b = emit tr (Trace.Send { round = 1; msg = 0; kind = \
           k; bytes = b; lc = 1; src = 0; dst = 1 })\n"));
  (* pattern matches (trace consumers) are not construction sites *)
  Alcotest.(check (list string))
    "match on Send accepted" []
    (rule_ids
       (lint "let f = function Trace.Send { bytes; _ } -> bytes | _ -> 0\n"));
  Alcotest.(check (list string))
    "tests may build bare events" []
    (rule_ids
       (lint ~path:"test/fixture.ml"
          "let e = Trace.Send { round = 1; msg = 0; lc = 1; src = 0; dst = 1 }\n"))

(* ----- clean fixture ----- *)

let clean_src =
  "let eps = 1e-9\n\
   let close a b = Float.abs (a -. b) < eps\n\
   let first = function [] -> None | x :: _ -> Some x\n\
   let rec sum acc = function [] -> acc | x :: tl -> sum (acc + x) tl\n"

let test_clean () =
  let r = lint clean_src in
  Alcotest.(check (list string)) "no findings" [] (rule_ids r);
  Alcotest.(check int) "one file" 1 r.Engine.files_scanned;
  Alcotest.(check bool) "parsed" false r.Engine.parse_failed

(* ----- suppressions ----- *)

let test_suppression_same_line () =
  let src =
    "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] "
    ^ sup "no-unordered-hashtbl-iter"
    ^ "\n"
  in
  let r = lint src in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids r);
  Alcotest.(check int) "counted" 1 r.Engine.suppressions_used

let test_suppression_line_above () =
  let src =
    sup "no-partial-stdlib" ^ "\nlet f l = List.hd l\n"
  in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids (lint src))

let test_suppression_exists_scan () =
  (* mirrors the audited detector.ml [pending] site: an order-independent
     exists-scan (commutative OR) over a Hashtbl, suppressed on the line
     above the indented iteration *)
  let src =
    "let pending t round =\n  let p = ref false in\n  "
    ^ sup "no-unordered-hashtbl-iter"
    ^ "\n\
      \  Hashtbl.iter (fun _ last -> if round - last > 3 then p := true) t;\n\
      \  !p\n"
  in
  let r = lint src in
  Alcotest.(check (list string)) "suppressed" [] (rule_ids r);
  Alcotest.(check int) "one audited site" 1 r.Engine.suppressions_used

let test_suppression_wrong_rule () =
  (* a suppression for a different rule must not mask the finding, and
     is itself reported as stale *)
  let src = "let f l = List.hd l " ^ sup "no-stdlib-random" ^ "\n" in
  Alcotest.(check (list string))
    "finding kept, stale suppression reported"
    [ "no-partial-stdlib"; "unused-suppression" ]
    (List.sort String.compare (rule_ids (lint src)))

let test_suppression_all () =
  let src = "let f l = List.hd (Obj.magic l) " ^ sup_all () ^ "\n" in
  Alcotest.(check (list string)) "allow all suppresses both" []
    (rule_ids (lint src))

let test_unused_suppression_reported () =
  let src = "let f x = x + 1 " ^ sup "no-stdlib-random" ^ "\n" in
  match (lint src).Engine.findings with
  | [ f ] ->
      Alcotest.(check string) "rule" Engine.unused_suppression_rule f.Finding.rule;
      Alcotest.(check int) "line" 1 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_suppression_reason_surfaced () =
  let src =
    "let f l = List.hd l "
    ^ sup ~reason:"nonempty by construction" "no-partial-stdlib"
    ^ "\n"
  in
  let r = lint src in
  Alcotest.(check (list string)) "no findings" [] (rule_ids r);
  match r.Engine.suppressed with
  | [ (f, reason) ] ->
      Alcotest.(check string) "silenced rule" "no-partial-stdlib" f.Finding.rule;
      Alcotest.(check string) "reason kept" "nonempty by construction" reason
  | l -> Alcotest.failf "expected one suppressed finding, got %d" (List.length l)

let test_suppression_missing_reason () =
  (* a used suppression without a reason is itself reported *)
  let src = "let f l = List.hd l " ^ sup_bare "no-partial-stdlib" ^ "\n" in
  Alcotest.(check (list string))
    "missing reason reported"
    [ Engine.missing_reason_rule ]
    (rule_ids (lint src))

(* ----- path scoping ----- *)

let test_rule_path_scoping () =
  (* partial accessors are only banned inside lib/core and lib/sim *)
  Alcotest.(check (list string))
    "List.hd fine outside protocol paths" []
    (rule_ids (lint ~path:"lib/experiments/fixture.ml" "let f l = List.hd l\n"));
  (* the seeded-rng module is the one place allowed to talk about Random *)
  Alcotest.(check (list string))
    "rng.ml exempt from no-stdlib-random" []
    (rule_ids (lint ~path:"lib/stats/rng.ml" "let x = Random.int 5\n"));
  (* print is only banned under lib/ *)
  Alcotest.(check (list string))
    "print fine in bin" []
    (rule_ids (lint ~path:"bin/fixture.ml" "let f () = print_endline \"x\"\n"))

let test_mli_parsing () =
  let r = lint ~path:"lib/core/fixture.mli" "val f : int -> int\n" in
  Alcotest.(check (list string)) "clean mli" [] (rule_ids r);
  Alcotest.(check bool) "parsed" false r.Engine.parse_failed

(* ----- parse failure ----- *)

let test_parse_error () =
  let r = lint "let let let\n" in
  Alcotest.(check bool) "parse_failed" true r.Engine.parse_failed;
  match r.Engine.findings with
  | [ f ] -> Alcotest.(check string) "rule" Engine.parse_error_rule f.Finding.rule
  | _ -> Alcotest.fail "expected exactly one parse-error finding"

(* ----- call graph ----- *)

let build_cg files =
  Callgraph.build
    (List.filter_map
       (fun (path, src) ->
         match Engine.parse ~path src with
         | Ok f -> Some (path, f)
         | Error _ -> None)
       files)

let callee_names cg name =
  match Callgraph.find_by_name cg name with
  | [ d ] ->
      List.filter_map
        (fun (c : Callgraph.call) ->
          Option.map
            (fun (d : Callgraph.def) -> d.Callgraph.name)
            (Callgraph.find cg c.Callgraph.callee))
        d.Callgraph.calls
  | ds -> Alcotest.failf "expected one def named %s, got %d" name (List.length ds)

let chain_files =
  [
    ("lib/x/tbl.ml", "let unsafe_iter t f = Hashtbl.iter f t\n");
    ( "lib/x/protocol.ml",
      "let resend_pending t = Tbl.unsafe_iter t (fun _ _ -> ())\n" );
    ("lib/x/engine.ml", "let run_round t = Protocol.resend_pending t\n");
  ]

let test_callgraph_cross_module () =
  let cg = build_cg chain_files in
  Alcotest.(check (list string))
    "engine -> protocol"
    [ "Protocol.resend_pending" ]
    (callee_names cg "Engine.run_round");
  Alcotest.(check (list string))
    "protocol -> tbl" [ "Tbl.unsafe_iter" ]
    (callee_names cg "Protocol.resend_pending")

let test_callgraph_alias () =
  let cg =
    build_cg
      [
        ("lib/x/protocol.ml", "let send t = ignore t\n");
        ( "lib/x/engine.ml",
          "module P = Protocol\nlet go t = P.send t\n" );
      ]
  in
  Alcotest.(check (list string))
    "alias expanded" [ "Protocol.send" ]
    (callee_names cg "Engine.go")

let test_callgraph_shadowing () =
  let cg =
    build_cg
      [
        ( "lib/x/engine.ml",
          "let helper x = x + 1\n\
           let f helper = helper 3\n\
           let g x = helper x\n" );
      ]
  in
  Alcotest.(check (list string))
    "param shadows unit fn" [] (callee_names cg "Engine.f");
  Alcotest.(check (list string))
    "unshadowed ref resolves" [ "Engine.helper" ]
    (callee_names cg "Engine.g")

let test_callgraph_wrapped_library () =
  let cg =
    build_cg
      [
        ("lib/stats/tbl.ml", "let iter_sorted t f = ignore (t, f)\n");
        ( "lib/sim/engine.ml",
          "let run t = Bwc_stats.Tbl.iter_sorted t (fun _ -> ())\n" );
      ]
  in
  Alcotest.(check (list string))
    "bwc_<lib> prefix maps to lib/<dir>"
    [ "Tbl.iter_sorted" ]
    (callee_names cg "Engine.run")

let test_callgraph_same_name_units_isolated () =
  (* two engine.ml units in different directories must not alias *)
  let cg =
    build_cg
      [
        ("lib/x/helper.ml", "let go () = ()\n");
        ("lib/x/engine.ml", "let run () = Helper.go ()\n");
        ("lib/y/engine.ml", "let run () = ()\n");
      ]
  in
  match Callgraph.find_by_name cg "Engine.run" with
  | [ a; b ] ->
      Alcotest.(check bool)
        "distinct dirs" true
        (a.Callgraph.unit_dir <> b.Callgraph.unit_dir)
  | ds -> Alcotest.failf "expected two Engine.run defs, got %d" (List.length ds)

(* ----- whole-program taint ----- *)

let taint_findings r =
  List.filter
    (fun f -> f.Finding.rule = Taint.determinism_rule)
    r.Engine.findings

let test_taint_three_hop_witness () =
  let r = Engine.lint_sources chain_files in
  (* Engine and Protocol are both hot units, so the same source is
     reported once per reaching unit *)
  match
    List.filter (fun f -> f.Finding.file = "lib/x/engine.ml") (taint_findings r)
  with
  | [ f ] ->
      Alcotest.(check (list string))
        "witness path"
        [ "Engine.run_round"; "Protocol.resend_pending"; "Tbl.unsafe_iter" ]
        f.Finding.witness;
      Alcotest.(check bool) "symbolic key" true
        (contains "Engine.run_round" (Finding.stable_key f));
      Alcotest.(check bool) "message names the source" true
        (contains "Hashtbl.iter" f.Finding.message)
  | fs ->
      Alcotest.failf "expected one Engine-rooted taint finding, got %d"
        (List.length fs)

let test_taint_interprocedural_only_suppression_not_stale () =
  (* satellite regression: bench/ is outside no-wall-clock-in-lib's
     only-paths, so the suppression below is justified purely by the
     interprocedural pass; it must cut the taint AND not be stale *)
  let files =
    [
      ( "bench/helper.ml",
        sup ~reason:"bench timing harness" "no-wall-clock-in-lib"
        ^ "\nlet now () = Unix.gettimeofday ()\n" );
      ("lib/x/engine.ml", "let run () = Helper.now ()\n");
    ]
  in
  let r = Engine.lint_sources files in
  Alcotest.(check (list string)) "taint cut, nothing stale" [] (rule_ids r)

let test_taint_root_suppression () =
  (* suppressing the hot-path anchor silences the finding but keeps the
     audit trail *)
  let files =
    [
      ("bench/helper.ml", "let now () = Unix.gettimeofday ()\n");
      ( "lib/x/engine.ml",
        sup ~reason:"latency probe, not protocol state" "determinism-taint"
        ^ "\nlet run () = Helper.now ()\n" );
    ]
  in
  let r = Engine.lint_sources files in
  Alcotest.(check (list string)) "no findings" [] (rule_ids r);
  match
    List.filter
      (fun (f, _) -> f.Finding.rule = Taint.determinism_rule)
      r.Engine.suppressed
  with
  | [ (_, reason) ] ->
      Alcotest.(check string) "reason" "latency probe, not protocol state"
        reason
  | l -> Alcotest.failf "expected one audited taint, got %d" (List.length l)

let test_taint_unsuppressed_without_comment () =
  let files =
    [
      ("bench/helper.ml", "let now () = Unix.gettimeofday ()\n");
      ("lib/x/engine.ml", "let run () = Helper.now ()\n");
    ]
  in
  let r = Engine.lint_sources files in
  Alcotest.(check (list string))
    "taint reported" [ Taint.determinism_rule ] (rule_ids r)

let test_taint_cold_module_not_root () =
  (* the same chain rooted in a non-hot unit reports nothing *)
  let files =
    [
      ("bench/helper.ml", "let now () = Unix.gettimeofday ()\n");
      ("lib/x/planner.ml", "let run () = Helper.now ()\n");
    ]
  in
  let r = Engine.lint_sources files in
  Alcotest.(check (list string)) "cold root, no taint" [] (rule_ids r)

(* ----- domain-safety audit ----- *)

let test_domain_unsafe_global () =
  let r =
    Engine.lint_sources
      [ ("lib/x/state.ml", "let cache = Hashtbl.create 16\n") ]
  in
  match r.Engine.findings with
  | [ f ] ->
      Alcotest.(check string) "rule" Taint.global_rule f.Finding.rule;
      Alcotest.(check string) "key is def name" "State.cache"
        (Finding.stable_key f)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_domain_unsafe_capture () =
  let r =
    Engine.lint_sources
      [
        ( "lib/x/memo.ml",
          "let lookup = let t = Hashtbl.create 16 in fun x -> Hashtbl.mem t x\n"
        );
      ]
  in
  Alcotest.(check (list string))
    "capture flagged" [ Taint.capture_rule ] (rule_ids r)

let test_domain_safe_shapes () =
  (* constants, functions and constructor-wrapped creation are fine *)
  let r =
    Engine.lint_sources
      [
        ( "lib/x/state.ml",
          "let size = 16\n\
           let create () = Hashtbl.create 16\n\
           let names = [ \"a\"; \"b\" ]\n" );
      ]
  in
  Alcotest.(check (list string)) "no findings" [] (rule_ids r)

(* ----- baseline ----- *)

let entry_strings es =
  List.map
    (fun (e : Baseline.entry) ->
      Printf.sprintf "%s|%s|%s" e.Baseline.b_rule e.Baseline.b_file
        e.Baseline.b_key)
    es

let mk_finding ?key ~rule ~file ~line () =
  Finding.make ?key ~rule ~severity:Finding.Warning ~file ~line ~col:0
    ~message:"m" ()

let test_baseline_roundtrip () =
  let fs =
    [
      mk_finding ~rule:"r1" ~file:"a.ml" ~line:3 ();
      mk_finding ~key:"Engine.run->Tbl.iter#Hashtbl.iter" ~rule:"r2"
        ~file:"b.ml" ~line:9 ();
    ]
  in
  let entries = Baseline.of_findings fs in
  let path = Filename.temp_file "bwclint_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Baseline.save ~path entries;
      match Baseline.load ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok loaded ->
          Alcotest.(check (list string))
            "round trip" (entry_strings entries) (entry_strings loaded))

let test_baseline_apply () =
  let old = mk_finding ~rule:"r1" ~file:"a.ml" ~line:3 () in
  let entries = Baseline.of_findings [ old ] in
  (* same findings: all matched, nothing fresh or gone *)
  let d = Baseline.apply entries [ old ] in
  Alcotest.(check int) "no fresh" 0 (List.length d.Baseline.fresh);
  Alcotest.(check int) "one matched" 1 (List.length d.Baseline.matched);
  Alcotest.(check int) "none gone" 0 (List.length d.Baseline.gone);
  (* a new finding is fresh; the baselined one still matches *)
  let fresh_f = mk_finding ~rule:"r2" ~file:"c.ml" ~line:1 () in
  let d = Baseline.apply entries [ old; fresh_f ] in
  Alcotest.(check (list string))
    "fresh rule" [ "r2" ]
    (List.map (fun f -> f.Finding.rule) d.Baseline.fresh);
  (* the baselined finding disappearing makes the entry stale *)
  let d = Baseline.apply entries [] in
  Alcotest.(check (list string))
    "gone entry" (entry_strings entries) (entry_strings d.Baseline.gone)

let test_baseline_symbolic_key_survives_line_drift () =
  let key = "Engine.run->Tbl.iter#Hashtbl.iter" in
  let v1 = mk_finding ~key ~rule:"determinism-taint" ~file:"e.ml" ~line:10 () in
  let v2 = mk_finding ~key ~rule:"determinism-taint" ~file:"e.ml" ~line:42 () in
  let entries = Baseline.of_findings [ v1 ] in
  let d = Baseline.apply entries [ v2 ] in
  Alcotest.(check int) "still matched" 1 (List.length d.Baseline.matched);
  Alcotest.(check int) "nothing fresh" 0 (List.length d.Baseline.fresh);
  (* positional findings do NOT survive drift: the L<line> key changes *)
  let p1 = mk_finding ~rule:"no-print-in-lib" ~file:"e.ml" ~line:10 () in
  let p2 = mk_finding ~rule:"no-print-in-lib" ~file:"e.ml" ~line:42 () in
  let d = Baseline.apply (Baseline.of_findings [ p1 ]) [ p2 ] in
  Alcotest.(check int) "positional drift is fresh" 1
    (List.length d.Baseline.fresh);
  Alcotest.(check int) "and stale" 1 (List.length d.Baseline.gone)

(* ----- SARIF ----- *)

let test_sarif_shape () =
  let r = Engine.lint_sources chain_files in
  let doc = Sarif.to_string ~suppressed:r.Engine.suppressed r.Engine.findings in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" sub) true
        (contains sub doc))
    [
      "\"$schema\"";
      "\"version\": \"2.1.0\"";
      "\"name\": \"bwclint\"";
      "\"ruleId\": \"determinism-taint\"";
      "\"codeFlows\"";
      "Protocol.resend_pending";
      "\"startLine\"";
    ]

let test_sarif_suppression_justification () =
  let files =
    [
      ("bench/helper.ml", "let now () = Unix.gettimeofday ()\n");
      ( "lib/x/engine.ml",
        sup ~reason:"latency probe" "determinism-taint"
        ^ "\nlet run () = Helper.now ()\n" );
    ]
  in
  let r = Engine.lint_sources files in
  let doc = Sarif.to_string ~suppressed:r.Engine.suppressed r.Engine.findings in
  Alcotest.(check bool) "inSource suppression" true
    (contains "\"kind\": \"inSource\"" doc);
  Alcotest.(check bool) "justification" true (contains "latency probe" doc)

(* ----- discovery ----- *)

let test_discover_skips_fixture_dirs () =
  (* recursive discovery must skip fixtures/ (dirty corpora), while
     passing the path explicitly still lints it *)
  let root = Filename.temp_file "bwclint_disc" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let fixtures = Filename.concat root "fixtures" in
  Sys.mkdir fixtures 0o755;
  let write p = Out_channel.with_open_text p (fun oc ->
      Out_channel.output_string oc "let x = 1\n")
  in
  let good = Filename.concat root "good.ml" in
  let bad = Filename.concat fixtures "bad.ml" in
  write good;
  write bad;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove good;
      Sys.remove bad;
      Sys.rmdir fixtures;
      Sys.rmdir root)
    (fun () ->
      Alcotest.(check (list string))
        "fixtures skipped on recursion" [ good ]
        (Engine.discover [ root ]);
      Alcotest.(check (list string))
        "explicit fixture path lints" [ bad ]
        (Engine.discover [ fixtures ]))

(* ----- reporters ----- *)

let test_json_report () =
  let r = lint "let x = Random.int 5\n" in
  let out = Format.asprintf "%a" Report.json r in
  let has sub = contains sub out in
  Alcotest.(check bool) "rule field" true (has "\"rule\":\"no-stdlib-random\"");
  Alcotest.(check bool) "severity field" true (has "\"severity\":\"error\"");
  Alcotest.(check bool) "file field" true (has "\"file\":\"lib/core/fixture.ml\"");
  Alcotest.(check bool) "errors count" true (has "\"errors\": 1")

let test_json_witness_and_suppressed () =
  let r = Engine.lint_sources chain_files in
  let out = Format.asprintf "%a" Report.json r in
  Alcotest.(check bool) "witness array" true (contains "\"witness\":[" out);
  Alcotest.(check bool) "suppressed array" true (contains "\"suppressed\"" out)

let test_json_escaping () =
  Alcotest.(check string)
    "quotes and newlines escaped" "\"a\\\"b\\nc\\\\d\""
    (Report.json_string "a\"b\nc\\d")

let test_human_report () =
  let r = lint "let f acc x = acc @ [ x ]\n" in
  let out = Format.asprintf "%a" Report.human r in
  let has sub = contains sub out in
  Alcotest.(check bool) "location prefix" true (has "lib/core/fixture.ml:1:");
  Alcotest.(check bool) "summary line" true (has "1 file scanned: 0 errors, 1 warning")

let test_human_witness_line () =
  let r = Engine.lint_sources chain_files in
  let out = Format.asprintf "%a" Report.human r in
  Alcotest.(check bool) "witness continuation" true
    (contains
       "witness: Engine.run_round -> Protocol.resend_pending -> \
        Tbl.unsafe_iter"
       out)

let test_rule_catalog_complete () =
  (* every syntactic rule the acceptance criteria names exists in the
     registry, and the catalog output names the whole-program rules *)
  List.iter
    (fun id ->
      match Rules.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "rule %s missing from catalog" id)
    [
      "no-stdlib-random";
      "no-unordered-hashtbl-iter";
      "no-polymorphic-compare-on-floats";
      "no-partial-stdlib";
      "no-quadratic-append";
      "no-print-in-lib";
      "no-wall-clock-in-lib";
      "no-blocking-io-in-daemon-core";
      "naked-failwith";
      "no-obj-magic";
      "no-marshal";
      "no-unlabelled-send";
    ];
  let out = Format.asprintf "%a" Report.rule_catalog () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "catalog lists %s" id) true
        (contains id out))
    [
      Taint.determinism_rule;
      Taint.global_rule;
      Taint.capture_rule;
      Engine.missing_reason_rule;
      Engine.unused_suppression_rule;
    ]

let () =
  Alcotest.run "bwc_analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "no-stdlib-random" `Quick test_no_stdlib_random;
          Alcotest.test_case "no-unordered-hashtbl-iter" `Quick
            test_no_unordered_hashtbl_iter;
          Alcotest.test_case "no-polymorphic-compare-on-floats" `Quick
            test_no_polymorphic_compare_on_floats;
          Alcotest.test_case "no-partial-stdlib" `Quick test_no_partial_stdlib;
          Alcotest.test_case "no-quadratic-append" `Quick test_no_quadratic_append;
          Alcotest.test_case "no-print-in-lib" `Quick test_no_print_in_lib;
          Alcotest.test_case "no-wall-clock-in-lib" `Quick test_no_wall_clock_in_lib;
          Alcotest.test_case "no-blocking-io-in-daemon-core" `Quick
            test_no_blocking_io_in_daemon_core;
          Alcotest.test_case "naked-failwith" `Quick test_naked_failwith;
          Alcotest.test_case "no-obj-magic" `Quick test_no_obj_magic;
          Alcotest.test_case "no-marshal" `Quick test_no_marshal;
          Alcotest.test_case "no-unlabelled-send" `Quick test_no_unlabelled_send;
          Alcotest.test_case "clean fixture" `Quick test_clean;
          Alcotest.test_case "catalog complete" `Quick test_rule_catalog_complete;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "same line" `Quick test_suppression_same_line;
          Alcotest.test_case "line above" `Quick test_suppression_line_above;
          Alcotest.test_case "exists-scan site" `Quick
            test_suppression_exists_scan;
          Alcotest.test_case "wrong rule kept" `Quick test_suppression_wrong_rule;
          Alcotest.test_case "allow all" `Quick test_suppression_all;
          Alcotest.test_case "stale reported" `Quick test_unused_suppression_reported;
          Alcotest.test_case "reason surfaced" `Quick
            test_suppression_reason_surfaced;
          Alcotest.test_case "missing reason reported" `Quick
            test_suppression_missing_reason;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "cross-module chain" `Quick
            test_callgraph_cross_module;
          Alcotest.test_case "module alias" `Quick test_callgraph_alias;
          Alcotest.test_case "shadowing" `Quick test_callgraph_shadowing;
          Alcotest.test_case "wrapped library" `Quick
            test_callgraph_wrapped_library;
          Alcotest.test_case "same-name units isolated" `Quick
            test_callgraph_same_name_units_isolated;
        ] );
      ( "taint",
        [
          Alcotest.test_case "three-hop witness" `Quick
            test_taint_three_hop_witness;
          Alcotest.test_case "interprocedural-only suppression not stale"
            `Quick test_taint_interprocedural_only_suppression_not_stale;
          Alcotest.test_case "root suppression audited" `Quick
            test_taint_root_suppression;
          Alcotest.test_case "unsuppressed chain reported" `Quick
            test_taint_unsuppressed_without_comment;
          Alcotest.test_case "cold module not a root" `Quick
            test_taint_cold_module_not_root;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "global mutable flagged" `Quick
            test_domain_unsafe_global;
          Alcotest.test_case "capture flagged" `Quick test_domain_unsafe_capture;
          Alcotest.test_case "safe shapes clean" `Quick test_domain_safe_shapes;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "apply semantics" `Quick test_baseline_apply;
          Alcotest.test_case "symbolic key survives drift" `Quick
            test_baseline_symbolic_key_survives_line_drift;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "document shape" `Quick test_sarif_shape;
          Alcotest.test_case "suppression justification" `Quick
            test_sarif_suppression_justification;
        ] );
      ( "engine",
        [
          Alcotest.test_case "path scoping" `Quick test_rule_path_scoping;
          Alcotest.test_case "mli parsing" `Quick test_mli_parsing;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "discovery skips fixtures" `Quick
            test_discover_skips_fixture_dirs;
        ] );
      ( "reporters",
        [
          Alcotest.test_case "json" `Quick test_json_report;
          Alcotest.test_case "json witness+suppressed" `Quick
            test_json_witness_and_suppressed;
          Alcotest.test_case "json escaping" `Quick test_json_escaping;
          Alcotest.test_case "human" `Quick test_human_report;
          Alcotest.test_case "human witness line" `Quick test_human_witness_line;
        ] );
    ]
