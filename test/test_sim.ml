(* Tests for bwc_sim: the event queue, the round-based engine's delivery
   semantics (messages arrive next round, inactive nodes are isolated,
   quiescence is detected), and churn schedules. *)

module Rng = Bwc_stats.Rng
module Event_queue = Bwc_sim.Event_queue
module Engine = Bwc_sim.Engine
module Churn = Bwc_sim.Churn
module Fault = Bwc_sim.Fault
module Trace = Bwc_obs.Trace

(* ----- Event_queue ----- *)

let test_eq_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  let pop () = snd (Option.get (Event_queue.pop q)) in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  let order = [ first; second; third ] in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:1.0 "first";
  Event_queue.add q ~time:1.0 "second";
  Event_queue.add q ~time:1.0 "third";
  let pop () = snd (Option.get (Event_queue.pop q)) in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ] [ a; b; c ]

let test_eq_drain_until () =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.add q ~time:t t) [ 5.0; 1.0; 3.0; 7.0 ];
  let drained = Event_queue.drain_until q ~time:4.0 in
  Alcotest.(check (list (float 1e-9))) "times" [ 1.0; 3.0 ] (List.map fst drained);
  Alcotest.(check int) "left" 2 (Event_queue.size q)

let test_eq_rejects_negative () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.add: negative time")
    (fun () -> Event_queue.add q ~time:(-1.0) ())

let test_eq_heap_stress () =
  let rng = Rng.create 3 in
  let q = Event_queue.create () in
  for _ = 1 to 500 do
    Event_queue.add q ~time:(Rng.float rng 100.0) ()
  done;
  let last = ref neg_infinity in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !last then Alcotest.fail "heap order violated";
        last := t;
        drain ()
  in
  drain ()

(* ----- Engine ----- *)

let test_engine_next_round_delivery () =
  let e = Engine.create ~rng:(Rng.create 4) 2 in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "hello";
  let got_in_round_1 = ref [] in
  let (_ : bool) =
    Engine.run_round e ~step:(fun id inbox ->
        if id = 1 then got_in_round_1 := inbox;
        false)
  in
  Alcotest.(check int) "delivered next round" 1 (List.length !got_in_round_1);
  (match !got_in_round_1 with
  | [ (src, msg) ] ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check string) "payload" "hello" msg
  | _ -> Alcotest.fail "expected one message");
  (* a message sent during round r is not visible within round r *)
  let seen_early = ref false in
  let e2 = Engine.create ~rng:(Rng.create 5) 2 in
  let (_ : bool) =
    Engine.run_round e2 ~step:(fun id inbox ->
        if id = 0 then Engine.send e2 ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "late";
        if id = 1 && inbox <> [] then seen_early := true;
        false)
  in
  ignore !seen_early (* delivery order inside a round is randomised... *)

let test_engine_inactive_nodes_drop () =
  let e = Engine.create ~rng:(Rng.create 6) 3 in
  Engine.set_active e 2 false;
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:2 "lost";
  (* the sender cannot know the destination is down: the message is
     enqueued normally and only dropped at delivery time *)
  Alcotest.(check int) "not dropped at send" 0 (Engine.dropped e);
  let stepped = ref [] in
  let (_ : bool) =
    Engine.run_round e ~step:(fun id _ ->
        stepped := id :: !stepped;
        false)
  in
  Alcotest.(check int) "dropped at delivery" 1 (Engine.dropped e);
  Alcotest.(check int) "attributed to the dead destination" 1
    (Engine.dropped_by e Engine.Dead_dst);
  Alcotest.(check int) "no other causes" 0
    (Engine.dropped_by e Engine.Fault_loss + Engine.dropped_by e Engine.Purge);
  Alcotest.(check bool) "inactive not stepped" false (List.mem 2 !stepped);
  Alcotest.(check int) "active count" 2 (Engine.active_count e)

let test_engine_until_stable () =
  (* a protocol that floods a token at most 5 hops: must stabilise *)
  let e = Engine.create ~rng:(Rng.create 7) 4 in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 5;
  let result =
    Engine.run_until_stable e ~max_rounds:50 ~step:(fun id inbox ->
        List.iter
          (fun (_, ttl) -> if ttl > 0 then Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:id ~dst:((id + 1) mod 4) (ttl - 1))
          inbox;
        false)
  in
  (match result with
  | `Stable rounds -> Alcotest.(check bool) "stabilised promptly" true (rounds <= 10)
  | `Max_rounds -> Alcotest.fail "did not stabilise");
  Alcotest.(check bool) "messages counted" true (Engine.messages_sent e >= 6)

let test_engine_change_keeps_running () =
  let e = Engine.create ~rng:(Rng.create 8) 2 in
  let countdown = ref 3 in
  let result =
    Engine.run_until_stable e ~max_rounds:50 ~step:(fun id _ ->
        if id = 0 && !countdown > 0 then begin
          decr countdown;
          true
        end
        else false)
  in
  match result with
  | `Stable rounds -> Alcotest.(check int) "3 active rounds + 1 quiet" 4 rounds
  | `Max_rounds -> Alcotest.fail "should stabilise"

let test_engine_reactivation () =
  (* deactivation purges traffic already in flight; traffic sent while
     the node is down travels normally and arrives if the node is back
     up by delivery time *)
  let e = Engine.create ~rng:(Rng.create 11) 2 in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "purged";
  Engine.set_active e 1 false;
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "in transit";
  Engine.set_active e 1 true;
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "delivered";
  let got = ref [] in
  let (_ : bool) =
    Engine.run_round e ~step:(fun id inbox ->
        if id = 1 then got := List.map snd inbox;
        false)
  in
  Alcotest.(check (list string)) "crash loses only in-flight traffic"
    [ "in transit"; "delivered" ] !got;
  Alcotest.(check int) "purge counted" 1 (Engine.dropped e);
  Alcotest.(check int) "attributed to the purge" 1 (Engine.dropped_by e Engine.Purge)

let test_engine_delayed_delivery () =
  (* a 3-round edge delivers exactly at +3 rounds, FIFO *)
  let e =
    Engine.create ~edge_delay:(fun ~src:_ ~dst:_ -> 3) ~rng:(Rng.create 12) 2
  in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "first";
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "second";
  let arrived = ref [] in
  for round = 1 to 4 do
    let (_ : bool) =
      Engine.run_round e ~step:(fun id inbox ->
          if id = 1 && inbox <> [] then arrived := (round, List.map snd inbox) :: !arrived;
          false)
    in
    ()
  done;
  match !arrived with
  | [ (3, [ "first"; "second" ]) ] -> ()
  | _ -> Alcotest.fail "expected FIFO delivery exactly at round 3"

let test_engine_message_conservation () =
  (* every sent message is eventually delivered or dropped, never lost *)
  let rng = Rng.create 13 in
  let e =
    Engine.create
      ~edge_delay:(fun ~src ~dst -> 1 + ((src + dst) mod 3))
      ~rng:(Rng.create 14) 6
  in
  let received = ref 0 in
  let to_send = ref 60 in
  let result =
    Engine.run_until_stable e ~max_rounds:200 ~step:(fun id inbox ->
        received := !received + List.length inbox;
        if !to_send > 0 && id = 0 then begin
          decr to_send;
          Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:(1 + Rng.int rng 5) ();
          true
        end
        else false)
  in
  (match result with
  | `Stable _ -> ()
  | `Max_rounds -> Alcotest.fail "must quiesce");
  Alcotest.(check int) "all delivered" (Engine.messages_sent e - Engine.dropped e)
    !received;
  Alcotest.(check int) "delivered counter agrees" (Engine.delivered e) !received

(* ----- Fault injection ----- *)

let test_fault_drop_all () =
  let faults = Fault.create ~drop:1.0 ~rng:(Rng.create 20) () in
  let e = Engine.create ~faults ~rng:(Rng.create 21) 2 in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "a";
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "b";
  let got = ref 0 in
  for _ = 1 to 3 do
    let (_ : bool) =
      Engine.run_round e ~step:(fun _ inbox ->
          got := !got + List.length inbox;
          false)
    in
    ()
  done;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "losses counted by the plan" 2 (Fault.lost faults);
  Alcotest.(check int) "losses counted by the engine" 2 (Engine.dropped e);
  Alcotest.(check int) "attributed to fault loss" 2
    (Engine.dropped_by e Engine.Fault_loss);
  Alcotest.(check int) "sends still counted" 2 (Engine.messages_sent e)

let test_fault_duplicate_all () =
  let faults = Fault.create ~duplicate:1.0 ~rng:(Rng.create 22) () in
  let e = Engine.create ~faults ~rng:(Rng.create 23) 2 in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "x";
  let got = ref 0 in
  for _ = 1 to 3 do
    let (_ : bool) =
      Engine.run_round e ~step:(fun id inbox ->
          if id = 1 then got := !got + List.length inbox;
          false)
    in
    ()
  done;
  Alcotest.(check int) "delivered twice" 2 !got;
  Alcotest.(check int) "duplication counted" 1 (Fault.duplicated faults)

let test_fault_jitter_reorders () =
  let faults = Fault.create ~jitter:3 ~rng:(Rng.create 24) () in
  let e = Engine.create ~faults ~rng:(Rng.create 25) 2 in
  for i = 1 to 20 do
    Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 i
  done;
  let got = ref 0 in
  let rounds = ref 0 in
  while !got < 20 && !rounds < 10 do
    incr rounds;
    let (_ : bool) =
      Engine.run_round e ~step:(fun id inbox ->
          if id = 1 then got := !got + List.length inbox;
          false)
    in
    ()
  done;
  Alcotest.(check int) "all delivered eventually" 20 !got;
  Alcotest.(check bool) "some messages jittered" true (Fault.delayed faults > 0);
  Alcotest.(check bool) "arrivals spread over several rounds" true (!rounds > 1);
  Alcotest.(check int) "none lost" 0 (Engine.dropped e)

let test_fault_partition_window () =
  (* every link between {1} and the rest is cut during rounds [0, 2) *)
  let p = Fault.isolate ~starts:0 ~heals:2 ~group:[ 1 ] in
  let faults = Fault.create ~partitions:[ p ] ~rng:(Rng.create 26) () in
  let e = Engine.create ~faults ~rng:(Rng.create 27) 2 in
  let got = ref [] in
  let step id inbox =
    if id = 1 then got := !got @ List.map snd inbox;
    false
  in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "cut";
  let (_ : bool) = Engine.run_round e ~step in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "still cut";
  let (_ : bool) = Engine.run_round e ~step in
  (* round 2: the partition has healed *)
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "healed";
  let (_ : bool) = Engine.run_round e ~step in
  Alcotest.(check (list string)) "only post-heal traffic" [ "healed" ] !got;
  Alcotest.(check int) "partition drops counted" 2 (Fault.partition_dropped faults);
  Alcotest.(check int) "attributed to the partition" 2
    (Engine.dropped_by e Engine.Partition);
  Alcotest.(check bool) "link cut during the window" true
    (Fault.partitioned faults ~round:1 ~src:0 ~dst:1);
  Alcotest.(check bool) "link restored after the window" false
    (Fault.partitioned faults ~round:2 ~src:0 ~dst:1)

let test_fault_crash_schedule () =
  let faults =
    Fault.create
      ~crashes:[ { Fault.node = 1; down_from = 1; up_at = 3 } ]
      ~rng:(Rng.create 28) ()
  in
  let e = Engine.create ~faults ~rng:(Rng.create 29) 2 in
  let got = ref [] in
  let step id inbox =
    if id = 1 then got := !got @ List.map snd inbox;
    false
  in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "in flight at crash";
  let (_ : bool) = Engine.run_round e ~step in
  Alcotest.(check bool) "down during the window" false (Engine.is_active e 1);
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "sent while down";
  let (_ : bool) = Engine.run_round e ~step in
  Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "arrives at restart";
  let (_ : bool) = Engine.run_round e ~step in
  Alcotest.(check bool) "restarted" true (Engine.is_active e 1);
  Alcotest.(check (list string)) "traffic due at restart is received"
    [ "arrives at restart" ] !got;
  Alcotest.(check int) "crash losses counted" 2 (Engine.dropped e);
  (* the copy in flight at the crash is purged; the copy sent while the
     node was down is dropped at delivery time *)
  Alcotest.(check int) "in-flight copy purged" 1 (Engine.dropped_by e Engine.Purge);
  Alcotest.(check int) "while-down copy dropped at delivery" 1
    (Engine.dropped_by e Engine.Dead_dst)

let test_fault_same_seed_deterministic () =
  let run seed =
    let faults =
      Fault.create ~drop:0.3 ~duplicate:0.2 ~jitter:2 ~rng:(Rng.create seed) ()
    in
    let e = Engine.create ~faults ~rng:(Rng.create 99) 4 in
    let got = ref [] in
    for _ = 1 to 5 do
      for dst = 1 to 3 do
        Engine.send e ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst (10 * dst)
      done;
      let (_ : bool) =
        Engine.run_round e ~step:(fun id inbox ->
            got := (id, List.map snd inbox) :: !got;
            false)
      in
      ()
    done;
    (!got, Fault.lost faults, Fault.duplicated faults, Fault.delayed faults)
  in
  let a = run 42 and b = run 42 and c = run 43 in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  Alcotest.(check bool) "different seed, different trace" true (a <> c)

let test_fault_none_is_transparent () =
  let e = Engine.create ~faults:Fault.none ~rng:(Rng.create 30) 2 in
  let e' = Engine.create ~rng:(Rng.create 30) 2 in
  let trace eng =
    Engine.send eng ~kind:Trace.Aggregate ~bytes:8 ~src:0 ~dst:1 "m";
    let got = ref [] in
    let (_ : bool) =
      Engine.run_round eng ~step:(fun id inbox ->
          got := (id, inbox) :: !got;
          false)
    in
    !got
  in
  Alcotest.(check bool) "bit-identical to no plan" true (trace e = trace e');
  Alcotest.(check int) "no losses" 0 (Fault.lost Fault.none)

let test_fault_rejects_bad_config () =
  Alcotest.check_raises "drop > 1"
    (Invalid_argument "Fault.create: drop not in [0,1]")
    (fun () -> ignore (Fault.create ~drop:1.5 ~rng:(Rng.create 1) ()))

(* ----- Churn ----- *)

let test_churn_scripted () =
  let c = Churn.scripted [ (3, Churn.Leave 1); (1, Churn.Join 5); (3, Churn.Join 2) ] in
  Alcotest.(check int) "round 1" 1 (List.length (Churn.events_at c 1));
  Alcotest.(check int) "round 3" 2 (List.length (Churn.events_at c 3));
  Alcotest.(check int) "round 2" 0 (List.length (Churn.events_at c 2));
  let all = Churn.all_events c in
  Alcotest.(check int) "total" 3 (List.length all);
  (match all with
  | (r, _) :: _ -> Alcotest.(check int) "sorted" 1 r
  | [] -> Alcotest.fail "events expected");
  (* events sharing a round come back in script order *)
  match Churn.events_at c 3 with
  | [ Churn.Leave 1; Churn.Join 2 ] -> ()
  | _ -> Alcotest.fail "same-round events must keep script order"

let test_churn_random_consistent () =
  (* a node can only leave while up and rejoin while down *)
  let c = Churn.random ~rng:(Rng.create 9) ~n:20 ~rounds:50 ~leave_prob:0.1 ~rejoin_prob:0.3 in
  let up = Array.make 20 true in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Churn.Leave i ->
          if not up.(i) then Alcotest.fail "leave while down";
          up.(i) <- false
      | Churn.Join i ->
          if up.(i) then Alcotest.fail "join while up";
          up.(i) <- true)
    (Churn.all_events c)

let test_churn_root_protected () =
  let c = Churn.random ~rng:(Rng.create 10) ~n:10 ~rounds:200 ~leave_prob:0.5 ~rejoin_prob:0.5 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Churn.Leave 0 | Churn.Join 0 -> Alcotest.fail "root must not churn"
      | Churn.Leave _ | Churn.Join _ -> ())
    (Churn.all_events c)

let () =
  Alcotest.run "bwc_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "drain_until" `Quick test_eq_drain_until;
          Alcotest.test_case "rejects negative time" `Quick test_eq_rejects_negative;
          Alcotest.test_case "heap stress" `Quick test_eq_heap_stress;
        ] );
      ( "engine",
        [
          Alcotest.test_case "next-round delivery" `Quick test_engine_next_round_delivery;
          Alcotest.test_case "inactive nodes" `Quick test_engine_inactive_nodes_drop;
          Alcotest.test_case "run until stable" `Quick test_engine_until_stable;
          Alcotest.test_case "state changes keep rounds running" `Quick
            test_engine_change_keeps_running;
          Alcotest.test_case "reactivation" `Quick test_engine_reactivation;
          Alcotest.test_case "delayed FIFO delivery" `Quick test_engine_delayed_delivery;
          Alcotest.test_case "message conservation" `Quick
            test_engine_message_conservation;
        ] );
      ( "fault",
        [
          Alcotest.test_case "drop 1.0 loses everything" `Quick test_fault_drop_all;
          Alcotest.test_case "duplicate 1.0 delivers twice" `Quick
            test_fault_duplicate_all;
          Alcotest.test_case "jitter spreads arrivals" `Quick test_fault_jitter_reorders;
          Alcotest.test_case "partition window" `Quick test_fault_partition_window;
          Alcotest.test_case "crash/restart schedule" `Quick test_fault_crash_schedule;
          Alcotest.test_case "same seed, same faults" `Quick
            test_fault_same_seed_deterministic;
          Alcotest.test_case "none is transparent" `Quick test_fault_none_is_transparent;
          Alcotest.test_case "rejects bad config" `Quick test_fault_rejects_bad_config;
        ] );
      ( "churn",
        [
          Alcotest.test_case "scripted" `Quick test_churn_scripted;
          Alcotest.test_case "random consistency" `Quick test_churn_random_consistent;
          Alcotest.test_case "root protected" `Quick test_churn_root_protected;
        ] );
    ]
