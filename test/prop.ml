(* Seeded property-based differential harness.

   Properties, each over freshly generated random inputs:

   1. churn-differential — after ANY sequence of Index.add_host /
      Index.remove_host events, the incrementally maintained
      Find_cluster.Index answers (exists, max_size, max_sizes, find)
      exactly as a fresh Index.build_subset of the same membership;
   2. coreset-diff — after ANY churn sequence, the approximate
      Find_cluster.Coreset brackets the exact index (exact max_size
      inside [lo, hi], tri-state exists never contradicts, find results
      feasible), with the bracket collapsing to equality when k >= n;
   3. coreset-monotone — summary merge is order-insensitive: any
      permutation of the merged summaries yields an identical summary
      (no hash-order determinism leak in the merge path);
   4. alg1-oracle-tree — on exact tree metrics Algorithm 1 agrees with
      the exact Bron-Kerbosch clique oracle on every (k, l) query;
   5. alg1-oracle-noisy — on noisy near-tree spaces the two may disagree
      only in the direction WPR permits (Algorithm 1 claiming a cluster
      the real space does not have, never missing one that exists);
   6. causal-dag — on traces of protocol runs under random fault plans
      (loss, duplication, jitter, crash windows), Causal.reconstruct
      yields a well-formed happens-before DAG: every Deliver matches a
      Send, Lamport stamps respect happens-before, predecessor edges
      point strictly backwards (acyclicity) and chain lengths add up.

   The harness is deliberately NOT an alcotest suite: its stdout is
   fully deterministic for a given seed (no timings), so two runs with
   the same seed must be byte-identical — CI asserts exactly that.
   Every failure prints the case index and the seed environment needed
   to replay it:

     BWC_PROP_SEED=<seed> BWC_PROP_CASES=<cases> dune exec test/prop.exe *)

module Rng = Bwc_stats.Rng
module Space = Bwc_metric.Space
module Tree = Bwc_predtree.Tree
module Find_cluster = Bwc_core.Find_cluster
module Index = Find_cluster.Index
module Clique = Bwc_core.Clique

let seed =
  match Sys.getenv_opt "BWC_PROP_SEED" with
  | Some s -> int_of_string s
  | None -> 2026

let cases =
  match Sys.getenv_opt "BWC_PROP_CASES" with
  | Some s -> int_of_string s
  | None -> 200

let fail_case prop case fmt =
  Printf.printf "FAIL %s case=%d (replay: BWC_PROP_SEED=%d BWC_PROP_CASES=%d)\n" prop
    case seed cases;
  Printf.ksprintf
    (fun msg ->
      Printf.printf "  %s\n" msg;
      exit 1)
    fmt

(* case rngs are derived from (seed, case) so a single failing case can
   be replayed without re-running its predecessors *)
let case_rng case = Rng.create ((seed * 1_000_003) + case)

(* ----- generators ----- *)

(* A random exact tree metric grown through Bwc_predtree.Tree itself:
   hosts are inserted one by one at random positions along random paths,
   exactly the degrees of freedom Gromov placement uses.  Path-sum
   distances in a tree are a tree metric by construction. *)
let tree_metric_space rng n =
  let tree = Tree.create () in
  let (_ : Tree.vertex) = Tree.add_first_host tree ~host:0 in
  for h = 1 to n - 1 do
    let vc = Tree.vertex_count tree in
    let z = Rng.int rng vc in
    let y = if vc = 1 then z else (z + 1 + Rng.int rng (vc - 1)) mod vc in
    let at = Rng.float rng (Float.max 1e-6 (Tree.dist tree z y)) in
    let leaf_weight = 0.1 +. Rng.float rng 10.0 in
    let (_ : Tree.vertex * Tree.vertex * int * float) =
      Tree.add_host tree ~host:h ~between:(z, y) ~at ~leaf_weight
    in
    ()
  done;
  Space.cached
    (Space.make ~n ~dist:(fun i j -> if i = j then 0.0 else Tree.host_dist tree i j))

(* A noisy near-tree space: the hierarchical ISP-topology generator
   degraded by multiplicative log-normal noise (the same degradation the
   treeness experiment sweeps). *)
let noisy_space rng ~sigma n =
  let ds =
    Bwc_dataset.Hier_tree.generate ~rng:(Rng.split rng) ~n ~name:"prop-noisy" ()
  in
  let ds = Bwc_dataset.Noise.multiplicative ~rng:(Rng.split rng) ~sigma ds in
  Space.cached (Bwc_dataset.Dataset.metric ds)

let off_diag_values space =
  Bwc_metric.Dmatrix.off_diagonal_values (Space.to_dmatrix space)

(* ----- property 1: churn differential ----- *)

let check_agreement prop case ~event idx rebuilt ~k ~l =
  if Index.members idx <> Index.members rebuilt then
    fail_case prop case "event %d: member lists differ" event;
  let e_inc = Index.exists idx ~k ~l and e_reb = Index.exists rebuilt ~k ~l in
  if e_inc <> e_reb then
    fail_case prop case "event %d: exists k=%d l=%.9g: incremental %b, rebuilt %b" event
      k l e_inc e_reb;
  let m_inc = Index.max_size idx ~l and m_reb = Index.max_size rebuilt ~l in
  if m_inc <> m_reb then
    fail_case prop case "event %d: max_size l=%.9g: incremental %d, rebuilt %d" event l
      m_inc m_reb;
  let f_inc = Index.find idx ~k ~l and f_reb = Index.find rebuilt ~k ~l in
  if f_inc <> f_reb then
    fail_case prop case "event %d: find k=%d l=%.9g diverged" event k l

let churn_differential () =
  let prop = "churn-differential" in
  let total_events = ref 0 and total_checks = ref 0 in
  for case = 0 to cases - 1 do
    let rng = case_rng case in
    let n = 8 + Rng.int rng 17 in
    let space =
      if Rng.bool rng then tree_metric_space rng n
      else noisy_space rng ~sigma:(0.1 +. Rng.float rng 0.4) n
    in
    let values = off_diag_values space in
    let l_max = Array.fold_left Float.max 0.0 values in
    let is_member = Array.make n false in
    let m0 = Rng.int rng (n + 1) in
    Array.iter (fun h -> is_member.(h) <- true) (Rng.sample_without_replacement rng m0 n);
    let members () = List.filter (fun h -> is_member.(h)) (List.init n Fun.id) in
    let idx = Index.build_subset space (members ()) in
    let events = 6 + Rng.int rng 10 in
    for event = 1 to events do
      incr total_events;
      let ins = List.filter (fun h -> not is_member.(h)) (List.init n Fun.id) in
      let outs = members () in
      let joining =
        match ins, outs with [], _ -> false | _, [] -> true | _ -> Rng.bool rng
      in
      let h = Rng.choose rng (Array.of_list (if joining then ins else outs)) in
      is_member.(h) <- joining;
      if joining then Index.add_host idx h else Index.remove_host idx h;
      let rebuilt = Index.build_subset space (members ()) in
      (* probe with arbitrary thresholds and with exact pair distances
         (the tie-heavy case the sorted structure must survive) *)
      for _ = 1 to 4 do
        incr total_checks;
        let k = 2 + Rng.int rng (Stdlib.max 1 (n - 1)) in
        let l =
          if Rng.bool rng || Array.length values = 0 then
            Rng.float rng (Float.max 1e-6 (l_max *. 1.1))
          else values.(Rng.int rng (Array.length values))
        in
        check_agreement prop case ~event idx rebuilt ~k ~l
      done;
      incr total_checks;
      let ls = Array.init 6 (fun i -> float_of_int i *. l_max /. 5.0) in
      if Index.max_sizes idx ~ls <> Index.max_sizes rebuilt ~ls then
        fail_case prop case "event %d: max_sizes vector diverged" event
    done
  done;
  Printf.printf "%s: %d sequences, %d events, %d checks, 0 divergences [ok]\n" prop
    cases !total_events !total_checks

(* ----- property 2: coreset vs exact index differential ----- *)

module Coreset = Find_cluster.Coreset
module CSummary = Bwc_metric.Coreset

(* The coreset's two-sided bound is certified on metric spaces (the
   derivation uses the triangle inequality), so the noisy arm repairs
   the noised near-tree matrix into a genuine metric with a
   shortest-path closure — still far from an exact tree metric, which is
   what exercises the radius-dependent terms of the bound. *)
let noisy_metric_space rng ~sigma n =
  let s = noisy_space rng ~sigma n in
  Space.cached
    (Space.of_dmatrix (Bwc_metric.Dmatrix.metric_closure (Space.to_dmatrix s)))

let check_feasible prop case ~event space is_member cl ~k ~l =
  if List.length cl <> k then
    fail_case prop case "event %d: find returned %d members, wanted %d" event
      (List.length cl) k;
  if List.length (List.sort_uniq compare cl) <> k then
    fail_case prop case "event %d: find returned duplicate hosts" event;
  List.iter
    (fun h ->
      if not is_member.(h) then
        fail_case prop case "event %d: find returned non-member %d" event h)
    cl;
  match cl with
  | u :: v :: _ ->
      let duv = space.Space.dist u v in
      if duv > l then
        fail_case prop case "event %d: find anchors %.9g apart > l=%.9g" event duv l;
      List.iter
        (fun x ->
          if space.Space.dist x u > duv || space.Space.dist x v > duv then
            fail_case prop case "event %d: find member %d outside S*_%d,%d" event x u v)
        cl
  | _ -> fail_case prop case "event %d: find returned fewer than 2 hosts" event

let coreset_diff () =
  let prop = "coreset-diff" in
  let total_events = ref 0 and total_checks = ref 0 and collapsed = ref 0 in
  for case = 0 to cases - 1 do
    let rng = case_rng (400_000 + case) in
    let n = 8 + Rng.int rng 17 in
    let space =
      if Rng.bool rng then tree_metric_space rng n
      else noisy_metric_space rng ~sigma:(0.1 +. Rng.float rng 0.4) n
    in
    (* k sweeps the whole regime: degenerate (1), tiny, moderate, and
       >= n where the bracket must collapse to the exact answer *)
    let ck =
      match Rng.int rng 5 with
      | 0 -> 1
      | 1 -> 2
      | 2 -> 3 + Rng.int rng 6
      | 3 -> n
      | _ -> n + 1 + Rng.int rng 4
    in
    let values = off_diag_values space in
    let l_max = Array.fold_left Float.max 0.0 values in
    let is_member = Array.make n false in
    let m0 = Rng.int rng (n + 1) in
    Array.iter (fun h -> is_member.(h) <- true) (Rng.sample_without_replacement rng m0 n);
    let members () = List.filter (fun h -> is_member.(h)) (List.init n Fun.id) in
    let idx = Index.build_subset space (members ()) in
    let cor = Coreset.of_members ~k:ck space (members ()) in
    let events = 6 + Rng.int rng 10 in
    for event = 1 to events do
      incr total_events;
      let ins = List.filter (fun h -> not is_member.(h)) (List.init n Fun.id) in
      let outs = members () in
      let joining =
        match ins, outs with [], _ -> false | _, [] -> true | _ -> Rng.bool rng
      in
      let h = Rng.choose rng (Array.of_list (if joining then ins else outs)) in
      is_member.(h) <- joining;
      if joining then begin
        Index.add_host idx h;
        Coreset.add cor h
      end
      else begin
        Index.remove_host idx h;
        Coreset.remove cor h
      end;
      if Coreset.members cor <> Index.members idx then
        fail_case prop case "event %d: member lists differ" event;
      let probe ~k ~l =
        incr total_checks;
        let exact = Index.max_size idx ~l in
        let iv = Coreset.max_size cor ~l in
        if iv.Coreset.lo > exact || exact > iv.Coreset.hi then
          fail_case prop case
            "event %d: max_size l=%.9g: exact %d outside [%d, %d] (coreset k=%d)"
            event l exact iv.Coreset.lo iv.Coreset.hi ck;
        if ck >= n && (iv.Coreset.lo <> exact || iv.Coreset.hi <> exact) then
          fail_case prop case
            "event %d: k=%d >= n=%d but bracket [%d, %d] did not collapse to %d"
            event ck n iv.Coreset.lo iv.Coreset.hi exact;
        if ck >= n then incr collapsed;
        let e = Index.exists idx ~k ~l in
        (match Coreset.exists cor ~k ~l with
        | `Yes ->
            if not e then
              fail_case prop case "event %d: coreset Yes, exact No (k=%d l=%.9g)"
                event k l
        | `No ->
            if e then
              fail_case prop case "event %d: coreset No, exact Yes (k=%d l=%.9g)"
                event k l
        | `Maybe ->
            if ck >= n then
              fail_case prop case "event %d: Maybe despite k=%d >= n=%d" event ck n);
        match Coreset.find cor ~k ~l with
        | None -> ()
        | Some cl ->
            check_feasible prop case ~event space is_member cl ~k ~l;
            if not e then
              fail_case prop case
                "event %d: find produced a cluster the exact index refutes" event
      in
      for _ = 1 to 4 do
        let k = 2 + Rng.int rng (Stdlib.max 1 (n - 1)) in
        let l =
          if Rng.bool rng || Array.length values = 0 then
            Rng.float rng (Float.max 1e-6 (l_max *. 1.1))
          else values.(Rng.int rng (Array.length values))
        in
        probe ~k ~l
      done;
      incr total_checks;
      let ls = Array.init 6 (fun i -> float_of_int i *. l_max /. 5.0) in
      let exact_v = Index.max_sizes idx ~ls in
      let iv_v = Coreset.max_sizes cor ~ls in
      Array.iteri
        (fun i exact ->
          let iv = iv_v.(i) in
          if iv.Coreset.lo > exact || exact > iv.Coreset.hi then
            fail_case prop case
              "event %d: max_sizes[%d] exact %d outside [%d, %d]" event i exact
              iv.Coreset.lo iv.Coreset.hi)
        exact_v
    done
  done;
  Printf.printf
    "%s: %d sequences, %d events, %d checks (%d at collapse), 0 bound violations [ok]\n"
    prop cases !total_events !total_checks !collapsed

(* ----- property 3: merge order-insensitivity ----- *)

let coreset_monotone () =
  let prop = "coreset-monotone" in
  let n_cases = Stdlib.max 1 (cases / 2) in
  let merges = ref 0 in
  for case = 0 to n_cases - 1 do
    let rng = case_rng (500_000 + case) in
    let n = 8 + Rng.int rng 13 in
    let space =
      if Rng.bool rng then tree_metric_space rng n
      else noisy_space rng ~sigma:(0.1 +. Rng.float rng 0.4) n
    in
    let ck = 1 + Rng.int rng 6 in
    let groups = 2 + Rng.int rng 3 in
    let buckets = Array.make groups [] in
    for h = 0 to n - 1 do
      let g = Rng.int rng groups in
      buckets.(g) <- h :: buckets.(g)
    done;
    let parts =
      Array.to_list (Array.map (fun hs -> CSummary.of_points space ~k:ck hs) buckets)
    in
    let reference = CSummary.merge space ~k:ck parts in
    let l_max =
      Array.fold_left Float.max 0.0 (off_diag_values space)
    in
    let ls = Array.init 5 (fun i -> float_of_int i *. l_max /. 4.0) in
    let check label merged =
      incr merges;
      if not (CSummary.equal merged reference) then
        fail_case prop case "%s merge produced a different summary (k=%d, %d groups)"
          label ck groups;
      Array.iter
        (fun l ->
          let a = CSummary.max_size space merged ~l in
          let b = CSummary.max_size space reference ~l in
          if a <> b then
            fail_case prop case "%s merge changed bounds at l=%.9g" label l)
        ls
    in
    check "reversed" (CSummary.merge space ~k:ck (List.rev parts));
    for p = 1 to 3 do
      let order = Rng.permutation rng groups in
      let shuffled = Array.to_list (Array.map (fun g -> List.nth parts g) order) in
      check (Printf.sprintf "permutation %d" p) (CSummary.merge space ~k:ck shuffled)
    done
  done;
  Printf.printf "%s: %d cases, %d permuted merges, all summaries identical [ok]\n" prop
    n_cases !merges

(* ----- properties 4 & 5: Algorithm 1 vs the Bron-Kerbosch oracle ----- *)

(* thresholds placed mid-gap between distinct pairwise distances, so no
   float-rounding ambiguity about which pairs a threshold admits; the
   extremes probe the trivially-infeasible and trivially-feasible ends *)
let midgap_thresholds values =
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let out = ref [ sorted.(0) *. 0.5; sorted.(n - 1) *. 1.5 ] in
  for i = 0 to n - 2 do
    let a = sorted.(i) and b = sorted.(i + 1) in
    if b -. a > 1e-7 *. b then out := ((a +. b) /. 2.0) :: !out
  done;
  Array.of_list (List.rev !out)

let oracle_tree () =
  let prop = "alg1-oracle-tree" in
  let n_cases = Stdlib.max 1 (cases / 2) in
  let queries = ref 0 in
  for case = 0 to n_cases - 1 do
    let rng = case_rng (100_000 + case) in
    let n = 6 + Rng.int rng 7 in
    let space = tree_metric_space rng n in
    let thresholds = midgap_thresholds (off_diag_values space) in
    for _ = 1 to 12 do
      incr queries;
      let k = 2 + Rng.int rng (n - 1) in
      let l = thresholds.(Rng.int rng (Array.length thresholds)) in
      let alg1 = Find_cluster.exists space ~k ~l in
      match Clique.exists_cluster space ~k ~l with
      | Clique.Feasible _ ->
          if not alg1 then
            fail_case prop case "k=%d l=%.9g: oracle feasible, Algorithm 1 missed" k l
      | Clique.Infeasible ->
          if alg1 then
            fail_case prop case
              "k=%d l=%.9g: Algorithm 1 claims a cluster on an exact tree metric the \
               oracle refutes"
              k l
      | Clique.Unknown -> ()
    done
  done;
  Printf.printf "%s: %d cases, %d queries, 0 disagreements [ok]\n" prop n_cases !queries

let oracle_noisy () =
  let prop = "alg1-oracle-noisy" in
  let n_cases = Stdlib.max 1 (cases / 2) in
  let queries = ref 0 and one_sided = ref 0 in
  for case = 0 to n_cases - 1 do
    let rng = case_rng (200_000 + case) in
    let n = 6 + Rng.int rng 7 in
    let space = noisy_space rng ~sigma:(0.2 +. Rng.float rng 0.3) n in
    let thresholds = midgap_thresholds (off_diag_values space) in
    for _ = 1 to 12 do
      incr queries;
      let k = 2 + Rng.int rng (n - 1) in
      let l = thresholds.(Rng.int rng (Array.length thresholds)) in
      let alg1 = Find_cluster.exists space ~k ~l in
      match Clique.exists_cluster space ~k ~l with
      | Clique.Feasible _ ->
          (* Algorithm 1 is complete on every metric: the diameter pair
             (p,q) of a real cluster admits all its members into S*_pq *)
          if not alg1 then
            fail_case prop case
              "k=%d l=%.9g: oracle feasible but Algorithm 1 missed — disagreement in \
               the forbidden direction"
              k l
      | Clique.Infeasible -> if alg1 then incr one_sided
      | Clique.Unknown -> ()
    done
  done;
  Printf.printf "%s: %d cases, %d queries (%d one-sided), 0 forbidden [ok]\n" prop
    n_cases !queries !one_sided

(* ----- property 4: happens-before DAG facts under random faults ----- *)

module Fault = Bwc_sim.Fault
module Protocol = Bwc_core.Protocol
module Ensemble = Bwc_predtree.Ensemble
module Trace = Bwc_obs.Trace
module Causal = Bwc_obs.Causal

let causal_dag () =
  let prop = "causal-dag" in
  let n_cases = Stdlib.max 1 (cases / 10) in
  let msgs_total = ref 0 and edges_total = ref 0 in
  for case = 0 to n_cases - 1 do
    let rng = case_rng (300_000 + case) in
    let n = 12 + Rng.int rng 13 in
    let ds =
      Bwc_dataset.Planetlab.generate ~rng:(Rng.split rng) ~name:"prop-ds"
        { Bwc_dataset.Planetlab.hp_target with n }
    in
    let space = Bwc_dataset.Dataset.metric ds in
    let classes = Bwc_core.Classes.of_percentiles ~count:4 ds in
    let metrics = Bwc_obs.Registry.create () in
    let trace = Trace.create () in
    let drop = Rng.float rng 0.3 and duplicate = Rng.float rng 0.2 in
    let jitter = Rng.int rng 3 in
    let crashes =
      List.filter_map
        (fun host ->
          if Rng.float rng 1.0 < 0.1 then begin
            let down_from = 2 + Rng.int rng 6 in
            Some
              {
                Fault.node = host;
                down_from;
                up_at = down_from + 2 + Rng.int rng 4;
              }
          end
          else None)
        (List.init (n - 1) (fun i -> i + 1))
    in
    let faults =
      Fault.create ~drop ~duplicate ~jitter ~crashes ~metrics
        ~rng:(Rng.split rng) ()
    in
    let ens = Ensemble.build ~rng:(Rng.split rng) ~metrics space in
    let p =
      Protocol.create ~rng:(Rng.split rng) ~n_cut:3 ~faults ~metrics ~trace
        ~classes ens
    in
    let (_ : int) = Protocol.run_aggregation ~max_rounds:300 p in
    let dag = Causal.reconstruct (Trace.events trace) in
    if dag.Causal.unmatched_delivers <> [] then
      fail_case prop case "%d delivers without a visible send"
        (List.length dag.Causal.unmatched_delivers);
    let by_id = Hashtbl.create 256 in
    List.iter
      (fun (m : Causal.msg_info) -> Hashtbl.replace by_id m.m_id m)
      dag.Causal.msgs;
    List.iter
      (fun (m : Causal.msg_info) ->
        incr msgs_total;
        if m.m_send_lc < 1 then
          fail_case prop case "msg %d: send lc %d < 1" m.m_id m.m_send_lc;
        (match (m.m_deliver_round, m.m_deliver_lc) with
        | Some dr, Some dlc ->
            if dr < m.m_send_round then
              fail_case prop case "msg %d: delivered round %d < send round %d"
                m.m_id dr m.m_send_round;
            if dlc <= m.m_send_lc then
              fail_case prop case
                "msg %d: deliver lc %d <= send lc %d (Lamport violates HB)"
                m.m_id dlc m.m_send_lc
        | None, None -> ()
        | _ -> fail_case prop case "msg %d: half-recorded delivery" m.m_id);
        match m.m_pred with
        | None ->
            if m.m_chain <> 1 then
              fail_case prop case "msg %d: rootless chain length %d" m.m_id
                m.m_chain
        | Some pid -> (
            (* pred ids are strictly smaller: edges point backwards in
               send order, so the reconstructed DAG cannot have a cycle *)
            if pid >= m.m_id then
              fail_case prop case "msg %d: pred %d not strictly earlier"
                m.m_id pid;
            incr edges_total;
            match Hashtbl.find_opt by_id pid with
            | None -> fail_case prop case "msg %d: pred %d unknown" m.m_id pid
            | Some pred -> (
                if m.m_chain <> pred.m_chain + 1 then
                  fail_case prop case "msg %d: chain %d <> pred chain %d + 1"
                    m.m_id m.m_chain pred.m_chain;
                if pred.m_dst <> m.m_src then
                  fail_case prop case
                    "msg %d from %d: pred %d was delivered at %d" m.m_id
                    m.m_src pid pred.m_dst;
                match (pred.m_deliver_round, pred.m_deliver_lc) with
                | Some pdr, Some pdlc ->
                    if pdr > m.m_send_round then
                      fail_case prop case
                        "msg %d: pred %d delivered round %d > send round %d"
                        m.m_id pid pdr m.m_send_round;
                    if pdlc >= m.m_send_lc then
                      fail_case prop case
                        "msg %d: pred %d deliver lc %d >= send lc %d" m.m_id
                        pid pdlc m.m_send_lc
                | _ ->
                    fail_case prop case "msg %d: pred %d never delivered"
                      m.m_id pid)))
      dag.Causal.msgs
  done;
  Printf.printf "%s: %d cases, %d messages, %d causal edges, all HB facts hold [ok]\n"
    prop n_cases !msgs_total !edges_total

(* 5. daemon-replay — the reactor behind bwclusterd is a pure function
   of (seed, script): running the same random request script through
   two freshly built reactors yields byte-identical transcripts AND
   byte-identical trace JSONL, and every well-formed request resolves
   to exactly one typed response (answer, ack, shed, timeout, or
   rejection — never a silent drop). *)

let daemon_replay () =
  let prop = "daemon-replay" in
  let n_cases = Stdlib.max 1 (cases / 20) in
  let module Reactor = Bwc_daemon.Reactor in
  let module Script = Bwc_daemon.Script in
  let module Wire = Bwc_daemon.Wire in
  let requests_total = ref 0 in
  let responses_total = ref 0 in
  for case = 0 to n_cases - 1 do
    let rng = case_rng case in
    let n = 10 + Rng.int rng 8 in
    let ticks = 4 + Rng.int rng 8 in
    let per_tick = 2 + Rng.int rng 6 in
    let script =
      List.concat
        (List.init ticks (fun at ->
             List.init per_tick (fun i ->
                 let id = Printf.sprintf "r%d_%d" at i in
                 let line =
                   match Rng.int rng 12 with
                   | 0 | 1 | 2 | 3 ->
                       Printf.sprintf "QUERY %s k=%d b=%f deadline=%d" id
                         (2 + Rng.int rng 3)
                         (1. +. Rng.float rng 40.)
                         (4 + Rng.int rng 20)
                   | 4 | 5 | 6 | 7 ->
                       Printf.sprintf "MEAS %s src=%d dst=%d bw=%f" id
                         (Rng.int rng n) (Rng.int rng n)
                         (1. +. Rng.float rng 80.)
                   | 8 -> Printf.sprintf "JOIN %s host=%d" id (Rng.int rng n)
                   | 9 -> Printf.sprintf "LEAVE %s host=%d" id (Rng.int rng n)
                   | 10 -> Printf.sprintf "PING stray=%s" id
                   | _ -> Printf.sprintf "BOGUS %s" id
                 in
                 Script.line ~at ~conn:(Rng.int rng 3) line)))
    in
    let sys_seed = (seed * 7) + case in
    let config =
      {
        Reactor.default_config with
        Reactor.ingest_fail = 0.2;
        stabilize_budget = 2;
        seed = sys_seed;
      }
    in
    let run () =
      let trace = Bwc_obs.Trace.create () in
      let dataset =
        Bwc_dataset.Planetlab.generate ~rng:(Rng.create sys_seed)
          ~name:"prop-daemon" { Bwc_dataset.Planetlab.hp_target with n }
      in
      let dyn = Bwc_core.Dynamic.create ~seed:sys_seed dataset in
      let reactor = Reactor.create ~trace config dyn in
      let events = Script.run reactor script in
      if not (Reactor.drained reactor) then
        fail_case prop case "reactor failed to drain";
      (events, Script.transcript events, Bwc_obs.Trace.to_jsonl trace)
    in
    let events, t1, tr1 = run () in
    let _, t2, tr2 = run () in
    if not (String.equal t1 t2) then
      fail_case prop case "replay transcripts differ (%d vs %d bytes)"
        (String.length t1) (String.length t2);
    if not (String.equal tr1 tr2) then
      fail_case prop case "replay traces differ (%d vs %d bytes)"
        (String.length tr1) (String.length tr2);
    (* 1:1 accounting: every request id gets exactly one response *)
    let counts = Hashtbl.create 64 in
    List.iter
      (fun (e : Script.event) ->
        match e.Script.response with
        | Wire.Answer { id; _ }
        | Wire.Acked { id; _ }
        | Wire.Shed { id; _ }
        | Wire.Timeout { id; _ }
        | Wire.Rejected { id; _ } ->
            incr responses_total;
            Hashtbl.replace counts id
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts id))
        | _ -> ())
      events;
    List.iter
      (fun (e : Script.entry) ->
        match String.split_on_char ' ' e.Script.line with
        | verb :: id :: _
          when List.mem verb [ "QUERY"; "MEAS"; "JOIN"; "LEAVE" ] -> (
            incr requests_total;
            match Hashtbl.find_opt counts id with
            | Some 1 -> ()
            | Some k -> fail_case prop case "request %s answered %d times" id k
            | None -> fail_case prop case "request %s silently dropped" id)
        | _ -> ())
      script
  done;
  Printf.printf
    "%s: %d cases, %d requests, %d typed responses, replays byte-identical [ok]\n"
    prop n_cases !requests_total !responses_total

let () =
  Printf.printf "bwc property harness (seed %d, %d churn sequences)\n" seed cases;
  churn_differential ();
  coreset_diff ();
  coreset_monotone ();
  oracle_tree ();
  oracle_noisy ();
  causal_dag ();
  daemon_replay ();
  Printf.printf "all properties hold\n"
